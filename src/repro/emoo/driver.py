"""Step-based optimization driving with checkpoint/resume.

Every optimizer in this code base — :class:`~repro.core.optimizer.
OptRROptimizer`, :class:`~repro.emoo.spea2.SPEA2` and
:class:`~repro.emoo.nsga2.NSGA2` — used to own a monolithic ``run()`` loop:
a killed process lost all work, and the only practical stopping rule was a
fixed generation budget.  This module factors the loop out once:

* An algorithm implements :class:`SteppableOptimization` — set up its state,
  advance one generation, produce the final result, and (de)serialize its
  state as a JSON-compatible document.
* :class:`OptimizationDriver` owns everything around the algorithm: the RNG,
  the generation counter, cumulative wall time, the termination criterion,
  and the checkpoint cadence.  :meth:`OptimizationDriver.steps` is a
  generator yielding one enriched :class:`GenerationSnapshot` per generation;
  ``run()`` methods on the optimizers are thin wrappers over it.

Checkpoints are versioned ``checkpoint`` io documents (:mod:`repro.io`)
holding the complete run state: population/archive arrays (bit-exact, see
:mod:`repro.utils.arrays`), the optimal-set state, termination-criterion
counters, and the NumPy bit-generator state.  The hard invariant: a run
killed after any generation ``k`` and resumed from its checkpoint retraces
the uninterrupted run bit for bit — same front, same Ω spectrum, same
matrices, same RNG stream.

For grid-shaped workloads (campaigns, :mod:`repro.experiments.grid`), the
ambient :func:`checkpoint_scope` gives every optimizer run inside a grid
cell an automatically claimed checkpoint file, resumed transparently when
the cell re-runs after an interruption.

This module lives in the ``emoo`` layer because the generic SPEA2/NSGA-II
engines run on the same driver and ``repro.emoo`` must not depend on
``repro.core``; :mod:`repro.core.driver` is the public import surface and
re-exports everything defined here.
"""

from __future__ import annotations

import hashlib
import json
import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, ClassVar, Iterator

import numpy as np

from repro.emoo.individual import Individual
from repro.emoo.population import Population
from repro.emoo.termination import GenerationState, TerminationCriterion
from repro.exceptions import OptimizationError, ReproError, ValidationError
from repro.types import SeedLike, as_rng
from repro.utils.arrays import decode_array, encode_array
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Version of the ``checkpoint`` document layout (bumped independently of the
#: io-wide ``format_version`` when the state payload changes shape).
CHECKPOINT_VERSION = 1

#: Default checkpoint cadence (generations between checkpoint writes).  At 50
#: the measured end-to-end overhead stays under 5% even with a well-filled Ω
#: (see ``benchmarks/bench_checkpoint.py``).
DEFAULT_CHECKPOINT_EVERY = 50


@dataclass(frozen=True)
class StepOutcome:
    """What one generation produced, as reported by the algorithm.

    Attributes
    ----------
    archive_updates:
        Number of improvements to the algorithm's long-term store during this
        generation (the Ω update count for OptRR; algorithms without such a
        store report 1 so update-based stagnation never fires spuriously).
    front_objectives:
        ``(n_points, n_objectives)`` objective array of the current elite
        front (minimisation convention).
    n_evaluations:
        Cumulative objective evaluations since the start of the run
        (including any resumed-from segments).
    n_full_evaluations / n_low_evaluations:
        Cumulative full- and reduced-fidelity split of ``n_evaluations``.
        Algorithms without a fidelity axis leave both ``None`` and the
        driver reports every evaluation as full fidelity.
    """

    archive_updates: int
    front_objectives: np.ndarray
    n_evaluations: int
    n_full_evaluations: int | None = None
    n_low_evaluations: int | None = None


@dataclass(frozen=True)
class GenerationSnapshot:
    """Enriched per-generation state yielded by :meth:`OptimizationDriver.steps`.

    Attributes
    ----------
    generation:
        Zero-based index of the generation that just completed.
    archive_updates:
        See :attr:`StepOutcome.archive_updates`.
    front_objectives:
        Objective array of the current elite front.
    front_size:
        Number of points on that front.
    hypervolume:
        2-D hypervolume of the front against the algorithm's reference point
        (``nan`` when the algorithm declares no reference or the front is not
        two-objective).
    n_evaluations:
        Cumulative objective evaluations so far.
    elapsed_seconds:
        Cumulative wall time of the run, including segments before a
        checkpoint/resume cycle.
    stopped:
        Whether the termination criterion fired after this generation (this
        is the last snapshot of the run when True).
    n_full_evaluations / n_low_evaluations:
        Cumulative full- and reduced-fidelity split of ``n_evaluations``
        (``n_low_evaluations`` stays 0 for runs without a fidelity axis).
    """

    generation: int
    archive_updates: int
    front_objectives: np.ndarray
    front_size: int
    hypervolume: float
    n_evaluations: int
    elapsed_seconds: float
    stopped: bool
    n_full_evaluations: int = 0
    n_low_evaluations: int = 0


class SteppableOptimization(ABC):
    """One optimization algorithm, decomposed for the stepwise driver."""

    #: Identifier stored in checkpoints; a checkpoint only restores into a
    #: driver wrapping the same algorithm.
    algorithm_name: ClassVar[str] = "steppable"

    @abstractmethod
    def setup(self, rng: np.random.Generator) -> None:
        """Create the initial state (populations, archives, counters)."""

    @abstractmethod
    def step(self, rng: np.random.Generator, generation: int) -> StepOutcome:
        """Advance the state by one generation."""

    @abstractmethod
    def finish(self, generation: int) -> Any:
        """Produce the final result after the last completed ``generation``."""

    @abstractmethod
    def state_document(self) -> dict[str, Any]:
        """JSON-compatible snapshot of the complete algorithm state."""

    @abstractmethod
    def restore_state(self, document: dict[str, Any]) -> None:
        """Restore the state captured by :meth:`state_document`."""

    def elite_individuals(self) -> list[Individual]:
        """The current elite set as ``Individual`` views (for callbacks)."""
        return []

    def notify_progress(self, elapsed_seconds: float, deadline_seconds: float | None) -> None:
        """Called by the driver before every :meth:`step` with the wall time
        consumed by the *current* segment and the smallest active wall-clock
        deadline budget (None without one).  Fidelity-scheduling algorithms
        adapt their low-fidelity budget here (default: nothing)."""

    def hypervolume_reference(self) -> tuple[float, float] | None:
        """Reference point for snapshot hypervolumes (None disables them)."""
        return None

    def setup_fingerprint(self) -> str:
        """Hash identifying the workload (not the stopping rule or seed).

        A checkpoint restores only into an algorithm with the same
        fingerprint, so a resumed run can never silently continue a
        different problem.  An empty string disables the check.
        """
        return ""


class OptimizationDriver:
    """Drives a :class:`SteppableOptimization` generation by generation.

    Parameters
    ----------
    optimization:
        The algorithm to drive.
    termination:
        Stopping rule, consulted after every generation with the enriched
        :class:`~repro.emoo.termination.GenerationState` (front snapshot and
        cumulative wall time included).
    rng:
        Seed or generator for the whole run.  On resume, the generator's
        bit-generator state is overwritten with the checkpointed state.
    checkpoint_path:
        File the driver writes ``checkpoint`` documents to (atomically, via
        a temporary file).  ``None`` disables checkpointing.
    checkpoint_every:
        Write a checkpoint every this many generations (the final generation
        is always checkpointed when a path is configured).
    """

    def __init__(
        self,
        optimization: SteppableOptimization,
        *,
        termination: TerminationCriterion,
        rng: SeedLike = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        if checkpoint_every < 1:
            raise OptimizationError(
                f"checkpoint_every must be at least 1, got {checkpoint_every}"
            )
        self.optimization = optimization
        self.termination = termination
        self.rng = as_rng(rng)
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path is not None else None
        self.checkpoint_every = int(checkpoint_every)
        self.generation = 0
        self._started = False
        self._finished = False
        self._elapsed = 0.0
        # Smallest wall-clock deadline inside the termination composition,
        # surfaced to the algorithm via notify_progress(); the anchor marks
        # where the current segment started (non-zero after a resume), so
        # the budget always applies to this invocation's new work — the
        # same semantics as Deadline itself.
        from repro.emoo.termination import termination_deadline_seconds

        self._deadline_seconds = termination_deadline_seconds(termination)
        self._elapsed_anchor = 0.0

    # -- checkpointing --------------------------------------------------------
    @property
    def elapsed_seconds(self) -> float:
        """Cumulative wall time, including resumed-from segments."""
        return self._elapsed

    def checkpoint_document(self, *, stopped: bool = False) -> dict[str, Any]:
        """The complete run state as a versioned ``checkpoint`` document."""
        from repro.backend.registry import active_backend_name
        from repro.io import FORMAT_VERSION

        return {
            "format_version": FORMAT_VERSION,
            "type": "checkpoint",
            "checkpoint_version": CHECKPOINT_VERSION,
            "backend": active_backend_name(),
            "algorithm": self.optimization.algorithm_name,
            "fingerprint": self.optimization.setup_fingerprint(),
            "generation": self.generation,
            "stopped": bool(stopped),
            "elapsed_seconds": float(self._elapsed),
            "rng_state": _rng_state_document(self.rng),
            "termination": self.termination.state_document(),
            "state": self.optimization.state_document(),
        }

    def save_checkpoint(self, path: str | Path | None = None, *, stopped: bool = False) -> Path:
        """Write the current state to ``path`` (default: the configured
        checkpoint path) and return the written path."""
        from repro.io import save_checkpoint

        destination = Path(path) if path is not None else self.checkpoint_path
        if destination is None:
            raise OptimizationError("no checkpoint path configured")
        return save_checkpoint(self.checkpoint_document(stopped=stopped), destination)

    def restore(self, document: dict[str, Any], *, reopen: bool = False) -> None:
        """Restore a checkpoint into this (not-yet-started) driver.

        ``reopen`` controls what happens when the checkpoint was written
        *after* the termination criterion fired: by default the driver comes
        back already finished (``steps()`` yields nothing and ``result()`` is
        immediately available, reproducing the original run's result without
        recomputation); with ``reopen=True`` the run continues — used when
        the caller extended the budget, e.g. ``--resume`` with a larger
        ``--generations``.

        Validation failures (wrong document type, another algorithm, another
        workload fingerprint) raise before any state is touched.  Payload
        errors raised later may leave algorithm/termination state partially
        written, but always *before* the RNG is overwritten — and a
        subsequent fresh start runs ``reset()`` + ``setup()``, which rebuild
        both completely, so a caught restore failure still yields an exact
        seed-deterministic fresh run.
        """
        if self._started:
            raise OptimizationError("cannot restore into a driver that already started")
        if document.get("type") != "checkpoint":
            raise ValidationError(
                f"expected a 'checkpoint' document, got {document.get('type')!r}"
            )
        version = document.get("checkpoint_version")
        if version != CHECKPOINT_VERSION:
            raise ValidationError(
                f"unsupported checkpoint version {version!r} (supported: {CHECKPOINT_VERSION})"
            )
        algorithm = document.get("algorithm")
        if algorithm != self.optimization.algorithm_name:
            raise ValidationError(
                f"checkpoint was written by algorithm {algorithm!r}, this driver runs "
                f"{self.optimization.algorithm_name!r}"
            )
        fingerprint = self.optimization.setup_fingerprint()
        stored = document.get("fingerprint", "")
        if fingerprint and stored and stored != fingerprint:
            raise ValidationError(
                "checkpoint fingerprint does not match this optimizer's workload "
                "(different prior, bound, or hyper-parameters)"
            )
        # Mutation order matters for the catch-and-start-fresh fallback in
        # the optimizers' driver() wrappers: everything that can raise runs
        # before the RNG is overwritten, so any payload error leaves it
        # pristine for a seed-exact fresh start.
        completed = int(document["generation"])
        stopped = bool(document.get("stopped", False))
        elapsed = float(document.get("elapsed_seconds", 0.0))
        self.termination.restore_state(document.get("termination", {}))
        self.optimization.restore_state(document["state"])
        _restore_rng_state(self.rng, document["rng_state"])
        self._elapsed = elapsed
        self._elapsed_anchor = elapsed
        # Wall-clock criteria anchor on the already-consumed time so a
        # deadline budgets this invocation's new work.
        self.termination.notify_resumed(elapsed)
        if stopped and not reopen:
            self.generation = completed
            self._finished = True
        else:
            self.generation = completed + 1
        self._started = True

    # -- driving --------------------------------------------------------------
    def steps(self) -> Iterator[GenerationSnapshot]:
        """Yield one :class:`GenerationSnapshot` per generation until the
        termination criterion fires.

        Checkpoints (when configured) are written between generations —
        after the termination criterion consumed the generation's state, so
        stateful stopping counters resume exactly.  A driver restored from a
        post-termination checkpoint yields nothing.
        """
        if self._finished:
            return
        if not self._started:
            self.termination.reset()
            self.optimization.setup(self.rng)
            self._started = True
        mark = time.perf_counter()
        while True:
            self.optimization.notify_progress(
                self._elapsed - self._elapsed_anchor, self._deadline_seconds
            )
            outcome = self.optimization.step(self.rng, self.generation)
            mark = self._accumulate(mark)
            state = GenerationState(
                generation=self.generation,
                archive_updates=outcome.archive_updates,
                front=outcome.front_objectives,
                elapsed_seconds=self._elapsed,
            )
            stop = self.termination.should_stop(state)
            if self.checkpoint_path is not None and (
                stop or (self.generation + 1) % self.checkpoint_every == 0
            ):
                mark = self._accumulate(mark)
                self.save_checkpoint(stopped=stop)
            yield GenerationSnapshot(
                generation=self.generation,
                archive_updates=outcome.archive_updates,
                front_objectives=outcome.front_objectives,
                front_size=int(np.asarray(outcome.front_objectives).shape[0]),
                hypervolume=self._hypervolume(outcome.front_objectives),
                n_evaluations=outcome.n_evaluations,
                elapsed_seconds=self._elapsed,
                stopped=stop,
                n_full_evaluations=(
                    outcome.n_full_evaluations
                    if outcome.n_full_evaluations is not None
                    else outcome.n_evaluations
                ),
                n_low_evaluations=(
                    outcome.n_low_evaluations
                    if outcome.n_low_evaluations is not None
                    else 0
                ),
            )
            mark = self._accumulate(mark)
            if stop:
                self._finished = True
                return
            self.generation += 1

    def run(
        self, on_snapshot: Callable[[GenerationSnapshot], None] | None = None
    ) -> Any:
        """Drive the run to termination and return the algorithm's result."""
        for snapshot in self.steps():
            if on_snapshot is not None:
                on_snapshot(snapshot)
        return self.result()

    def result(self) -> Any:
        """The final result; only available once the run has terminated."""
        if not self._finished:
            raise OptimizationError(
                "the run has not terminated yet; exhaust steps() or call run()"
            )
        return self.optimization.finish(self.generation)

    @property
    def finished(self) -> bool:
        """Whether the termination criterion has fired."""
        return self._finished

    # -- internals ------------------------------------------------------------
    def _accumulate(self, mark: float) -> float:
        now = time.perf_counter()
        self._elapsed += now - mark
        return now

    def _hypervolume(self, front: np.ndarray) -> float:
        reference = self.optimization.hypervolume_reference()
        front = np.asarray(front, dtype=np.float64)
        if reference is None or front.ndim != 2 or front.shape[1] != 2:
            return float("nan")
        from repro.emoo.indicators import finite_front_hypervolume_2d

        volume = finite_front_hypervolume_2d(front, reference)
        return float("nan") if volume is None else volume


# -- population serialization --------------------------------------------------
def population_to_document(population: Population, problem: Any = None) -> dict[str, Any]:
    """Serialize a :class:`~repro.emoo.population.Population` bit-exactly.

    Array-native populations (the RR path) store their columns as base64
    byte arrays.  Source-backed populations (the generic SPEA2/NSGA-II path,
    where genomes are opaque) serialize per-individual through the problem's
    genome codec (:meth:`repro.emoo.problem.Problem.genome_to_data`);
    individual metadata must be JSON-compatible scalars.
    """
    if population.source is None:
        return {
            "layout": "arrays",
            "genomes": encode_array(population.genomes),
            "objectives": encode_array(population.objectives),
            "feasible": encode_array(population.feasible),
            "metadata": {
                key: encode_array(column) for key, column in population.metadata.items()
            },
            "fitness": encode_array(population.fitness),
            "fitness_generation": population.fitness_generation,
        }
    if problem is None:
        raise OptimizationError(
            "serializing a source-backed population needs the problem's genome codec"
        )
    individuals = [
        {
            "genome": problem.genome_to_data(individual.genome),
            "objectives": encode_array(individual.objectives),
            "feasible": bool(individual.feasible),
            "metadata": {
                key: (value.item() if isinstance(value, np.generic) else value)
                for key, value in individual.metadata.items()
            },
        }
        for individual in population.source
    ]
    return {
        "layout": "individuals",
        "individuals": individuals,
        "fitness": encode_array(population.fitness),
        "fitness_generation": population.fitness_generation,
    }


def population_from_document(document: dict[str, Any], problem: Any = None) -> Population:
    """Rebuild a population from :func:`population_to_document` output."""
    layout = document.get("layout")
    if layout == "arrays":
        return Population(
            genomes=decode_array(document["genomes"]),
            objectives=decode_array(document["objectives"]),
            feasible=decode_array(document["feasible"]),
            metadata={
                key: decode_array(column)
                for key, column in document.get("metadata", {}).items()
            },
            fitness=decode_array(document["fitness"]),
            fitness_generation=int(document.get("fitness_generation", -1)),
        )
    if layout == "individuals":
        if problem is None:
            raise OptimizationError(
                "restoring a source-backed population needs the problem's genome codec"
            )
        individuals = [
            Individual(
                genome=problem.genome_from_data(entry["genome"]),
                objectives=decode_array(entry["objectives"]),
                feasible=bool(entry["feasible"]),
                metadata=dict(entry.get("metadata", {})),
            )
            for entry in document.get("individuals", [])
        ]
        population = Population.from_individuals(individuals)
        population.fitness = decode_array(document["fitness"])
        population.fitness_generation = int(document.get("fitness_generation", -1))
        return population
    raise ValidationError(f"unknown population layout {layout!r}")


def workload_fingerprint(payload: dict[str, Any]) -> str:
    """SHA-256 over a canonical-JSON payload (the fingerprint helper the
    algorithm adapters use)."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


def _rng_state_document(rng: np.random.Generator) -> dict[str, Any]:
    """The generator's bit-generator state as plain JSON data."""
    return _plain(rng.bit_generator.state)


def _restore_rng_state(rng: np.random.Generator, document: dict[str, Any]) -> None:
    try:
        rng.bit_generator.state = document
    except (TypeError, ValueError, KeyError) as exc:
        raise ValidationError(f"cannot restore RNG state: {exc}") from exc


def _plain(value: Any) -> Any:
    """Recursively convert numpy scalars to native types (ints stay exact:
    Python ints are arbitrary precision, and the PCG64 state is two 128-bit
    integers)."""
    if isinstance(value, dict):
        return {key: _plain(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(entry) for entry in value]
    if isinstance(value, np.generic):
        return value.item()
    return value


# -- ambient checkpoint scope --------------------------------------------------
@dataclass
class CheckpointScope:
    """Ambient checkpoint policy for optimizer runs inside a grid cell.

    Each optimizer run started while a scope is active claims the next
    ``<token>-<index>.json`` file in ``directory`` (runs inside a cell are
    sequential, so the claim order is deterministic) and auto-resumes from
    it when it already holds a matching checkpoint.  ``deadline_at`` is an
    absolute :func:`time.monotonic` target shared by every run in the scope:
    each claim converts it into the *remaining* wall-clock budget.
    """

    directory: Path | None
    every: int = DEFAULT_CHECKPOINT_EVERY
    token: str = "run"
    deadline_at: float | None = None
    _counter: int = field(default=0, repr=False)

    def claim(self) -> tuple[Path | None, int, float | None]:
        """Claim the next checkpoint slot: (path, cadence, remaining deadline)."""
        path = None
        if self.directory is not None:
            path = self.directory / f"{self.token}-{self._counter}.json"
            self._counter += 1
        remaining = None
        if self.deadline_at is not None:
            remaining = max(self.deadline_at - time.monotonic(), 1e-3)
        return path, self.every, remaining

    def clear(self) -> None:
        """Delete this scope's checkpoint files (call after the cell's work
        completed and its final result is safely stored).

        The glob also sweeps the ``.prev`` rotation siblings and ``.corrupt``
        quarantine files that :mod:`repro.io` leaves next to each
        checkpoint.
        """
        if self.directory is None or not self.directory.is_dir():
            return
        for path in self.directory.glob(f"{self.token}-*.json*"):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - cleanup is best effort
                pass


_ACTIVE_SCOPE: CheckpointScope | None = None


@contextmanager
def checkpoint_scope(
    directory: str | Path | None,
    *,
    every: int = DEFAULT_CHECKPOINT_EVERY,
    token: str = "run",
    deadline: float | None = None,
):
    """Activate a :class:`CheckpointScope` for the duration of the block.

    ``directory`` may be None to activate a deadline-only scope (no
    checkpoint files).  Scopes nest; the innermost one wins.
    """
    global _ACTIVE_SCOPE
    if every < 1:
        raise OptimizationError(f"checkpoint cadence must be at least 1, got {every}")
    resolved = Path(directory) if directory is not None else None
    if resolved is not None:
        resolved.mkdir(parents=True, exist_ok=True)
    scope = CheckpointScope(
        directory=resolved,
        every=int(every),
        token=token,
        deadline_at=(time.monotonic() + deadline) if deadline is not None else None,
    )
    previous = _ACTIVE_SCOPE
    _ACTIVE_SCOPE = scope
    try:
        yield scope
    finally:
        _ACTIVE_SCOPE = previous


def active_checkpoint_scope() -> CheckpointScope | None:
    """The innermost active scope, if any."""
    return _ACTIVE_SCOPE


def claim_scoped_checkpoint() -> tuple[Path | None, int, float | None, dict[str, Any] | None]:
    """Claim checkpointing parameters from the ambient scope.

    Returns ``(path, cadence, remaining_deadline, resume_document)``; all
    None/default when no scope is active.  When the claimed file (or its
    ``.prev`` rotation sibling) already holds a valid checkpoint it is
    returned for auto-resume; a corrupt newest checkpoint is quarantined by
    :func:`repro.io.load_checkpoint_with_fallback` and resume falls back to
    the previous one.  With no valid candidate at all the run starts fresh
    and overwrites.
    """
    scope = _ACTIVE_SCOPE
    if scope is None:
        return None, DEFAULT_CHECKPOINT_EVERY, None, None
    path, every, remaining = scope.claim()
    resume_document = None
    if path is not None:
        from repro.io import load_checkpoint_with_fallback

        try:
            resume_document, _ = load_checkpoint_with_fallback(path)
        except FileNotFoundError:
            pass
        except (OSError, ReproError, ValueError) as exc:
            logger.warning("ignoring unreadable checkpoint %s: %s", path, exc)
    return path, every, remaining, resume_document


def build_driver(
    optimization: SteppableOptimization,
    *,
    termination: TerminationCriterion,
    rng: SeedLike = None,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int | None = None,
    deadline: float | None = None,
) -> OptimizationDriver:
    """The shared driver-construction policy behind every optimizer's
    ``driver()`` method.

    Composes an explicit ``deadline`` into the termination via ``|``; when no
    explicit ``checkpoint_path`` is given, claims one from the ambient
    :func:`checkpoint_scope` (inheriting the scope's cadence and remaining
    wall-clock budget) and auto-resumes from a matching previous checkpoint.
    A scoped checkpoint that does not match this optimization (another
    algorithm or workload, an unreadable payload) is logged and ignored —
    the run starts fresh and overwrites it.
    """
    from repro.emoo.termination import Deadline

    criterion = termination
    if deadline is not None:
        criterion = criterion | Deadline(deadline)
    resume_document = None
    if checkpoint_path is None:
        checkpoint_path, scoped_every, remaining, resume_document = claim_scoped_checkpoint()
        if checkpoint_every is None:
            checkpoint_every = scoped_every
        if remaining is not None:
            criterion = criterion | Deadline(remaining)
    driver = OptimizationDriver(
        optimization,
        termination=criterion,
        rng=rng,
        checkpoint_path=checkpoint_path,
        checkpoint_every=(
            checkpoint_every if checkpoint_every is not None else DEFAULT_CHECKPOINT_EVERY
        ),
    )
    if resume_document is not None:
        try:
            driver.restore(resume_document)
            logger.info(
                "resumed %s run from checkpoint %s (generation %d)",
                optimization.algorithm_name,
                checkpoint_path,
                driver.generation,
            )
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            logger.warning("ignoring mismatched checkpoint %s: %s", checkpoint_path, exc)
    return driver
