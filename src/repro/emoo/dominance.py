"""Pareto dominance relations (Definition 5.1 in the paper).

All objectives are minimised.  Constrained dominance is used: a feasible
individual dominates any infeasible one; two infeasible individuals are
compared on their objectives like feasible ones (so the population can still
be driven towards feasibility).

Everything here is array-first: the dominance matrix, non-dominated filtering
and non-dominated sorting all operate on plain ``(size, n_objectives)``
objective arrays (plus a feasibility mask) via broadcasting, and the
``Individual``-based functions are thin wrappers.  A pure-Python front-peeling
reference (:func:`pareto_ranks_reference`) is kept for the equivalence tests.
"""

from __future__ import annotations

import numpy as np

from repro.emoo.individual import Individual, objectives_array


def dominates(first: Individual, second: Individual) -> bool:
    """Whether ``first`` Pareto-dominates ``second``.

    ``first`` dominates ``second`` when it is no worse in every objective and
    strictly better in at least one, with feasibility taking precedence.
    """
    if first.feasible and not second.feasible:
        return True
    if second.feasible and not first.feasible:
        return False
    a, b = first.objectives, second.objectives
    return bool(np.all(a <= b) and np.any(a < b))


def feasibility_array(population: list[Individual]) -> np.ndarray:
    """Boolean feasibility mask of ``population``."""
    return np.array([individual.feasible for individual in population], dtype=bool)


def dominance_matrix_from_arrays(
    objectives: np.ndarray, feasible: np.ndarray | None = None
) -> np.ndarray:
    """Boolean matrix ``D`` with ``D[i, j] = True`` iff row ``i`` of
    ``objectives`` dominates row ``j``, under constrained dominance when a
    ``feasible`` mask is given.  Fully broadcasted — no Python loops."""
    objectives = np.asarray(objectives, dtype=np.float64)
    size = objectives.shape[0]
    if size == 0:
        return np.zeros((0, 0), dtype=bool)
    less_equal = np.all(objectives[:, None, :] <= objectives[None, :, :], axis=2)
    strictly_less = np.any(objectives[:, None, :] < objectives[None, :, :], axis=2)
    matrix = less_equal & strictly_less
    if feasible is not None:
        feasible = np.asarray(feasible, dtype=bool)
        feasibility_dominance = feasible[:, None] & ~feasible[None, :]
        same_feasibility = feasible[:, None] == feasible[None, :]
        matrix = feasibility_dominance | (same_feasibility & matrix)
    np.fill_diagonal(matrix, False)
    return matrix


def dominance_matrix(population: list[Individual]) -> np.ndarray:
    """Boolean matrix ``D`` with ``D[i, j] = True`` iff individual ``i``
    dominates individual ``j``.  Vectorised so fitness assignment over a few
    hundred individuals stays fast."""
    if not population:
        return np.zeros((0, 0), dtype=bool)
    return dominance_matrix_from_arrays(
        objectives_array(population), feasibility_array(population)
    )


def non_dominated(population: list[Individual]) -> list[Individual]:
    """Return the non-dominated subset of ``population``."""
    if not population:
        return []
    matrix = dominance_matrix(population)
    dominated = matrix.any(axis=0)
    return [individual for individual, flag in zip(population, dominated) if not flag]


def pareto_ranks_from_arrays(
    objectives: np.ndarray, feasible: np.ndarray | None = None
) -> np.ndarray:
    """Non-dominated sorting ranks (0 = first front) over raw arrays.

    Fronts are peeled with boolean matrix reductions instead of per-individual
    queues: at each step the individuals not dominated by any still-alive
    individual form the next front.  Equivalent to the classic fast
    non-dominated sort (see :func:`pareto_ranks_reference`), but every peel is
    one ``any``-reduction over the dominance matrix.
    """
    objectives = np.asarray(objectives, dtype=np.float64)
    size = objectives.shape[0]
    ranks = np.full(size, -1, dtype=np.int64)
    if size == 0:
        return ranks
    matrix = dominance_matrix_from_arrays(objectives, feasible)
    alive = np.ones(size, dtype=bool)
    front_index = 0
    while alive.any():
        dominated_by_alive = matrix[alive].any(axis=0)
        front = alive & ~dominated_by_alive
        # A strict partial order always has minimal elements, so the peel
        # terminates; guard anyway so a broken dominance matrix cannot hang.
        assert front.any(), "non-dominated sorting failed to peel a front"
        ranks[front] = front_index
        alive &= ~front
        front_index += 1
    return ranks


def pareto_ranks(population: list[Individual]) -> np.ndarray:
    """Non-dominated sorting ranks (0 = first front), as used by NSGA-II.

    Also writes the rank back onto each individual's ``rank`` attribute.
    """
    if not population:
        return np.full(0, -1, dtype=np.int64)
    ranks = pareto_ranks_from_arrays(
        objectives_array(population), feasibility_array(population)
    )
    for individual, rank in zip(population, ranks):
        individual.rank = int(rank)
    return ranks


def pareto_ranks_reference(population: list[Individual]) -> np.ndarray:
    """Reference loop implementation of non-dominated sorting (Deb's fast
    non-dominated sort with explicit domination counts).

    Kept as the ground truth the vectorized :func:`pareto_ranks` is tested
    against; does *not* write ranks back onto the individuals.
    """
    size = len(population)
    ranks = np.full(size, -1, dtype=np.int64)
    if size == 0:
        return ranks
    matrix = dominance_matrix(population)
    domination_counts = matrix.sum(axis=0).astype(np.int64)
    dominated_sets = [np.flatnonzero(matrix[index]) for index in range(size)]
    current_front = list(np.flatnonzero(domination_counts == 0))
    front_index = 0
    remaining = size
    while current_front:
        next_front: list[int] = []
        for index in current_front:
            ranks[index] = front_index
            remaining -= 1
            for dominated_index in dominated_sets[index]:
                domination_counts[dominated_index] -= 1
                if domination_counts[dominated_index] == 0:
                    next_front.append(int(dominated_index))
        current_front = next_front
        front_index += 1
    assert remaining == 0, "non-dominated sorting failed to rank every individual"
    return ranks


def non_dominated_objectives(objectives: np.ndarray) -> np.ndarray:
    """Filter a raw objective array down to its non-dominated rows.

    A convenience for working with plain ``(n_points, n_objectives)`` arrays
    (e.g. baseline scheme sweeps) without wrapping them in individuals.
    """
    points = np.asarray(objectives, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"objectives must be 2-D, got shape {points.shape}")
    if points.shape[0] == 0:
        return points
    matrix = dominance_matrix_from_arrays(points)
    return points[~matrix.any(axis=0)]
