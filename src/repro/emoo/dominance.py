"""Pareto dominance relations (Definition 5.1 in the paper).

All objectives are minimised.  Constrained dominance is used: a feasible
individual dominates any infeasible one; two infeasible individuals are
compared on their objectives like feasible ones (so the population can still
be driven towards feasibility).
"""

from __future__ import annotations

import numpy as np

from repro.emoo.individual import Individual, objectives_array


def dominates(first: Individual, second: Individual) -> bool:
    """Whether ``first`` Pareto-dominates ``second``.

    ``first`` dominates ``second`` when it is no worse in every objective and
    strictly better in at least one, with feasibility taking precedence.
    """
    if first.feasible and not second.feasible:
        return True
    if second.feasible and not first.feasible:
        return False
    a, b = first.objectives, second.objectives
    return bool(np.all(a <= b) and np.any(a < b))


def dominance_matrix(population: list[Individual]) -> np.ndarray:
    """Boolean matrix ``D`` with ``D[i, j] = True`` iff individual ``i``
    dominates individual ``j``.  Vectorised so fitness assignment over a few
    hundred individuals stays fast."""
    size = len(population)
    if size == 0:
        return np.zeros((0, 0), dtype=bool)
    objectives = objectives_array(population)
    feasible = np.array([individual.feasible for individual in population], dtype=bool)
    less_equal = np.all(objectives[:, None, :] <= objectives[None, :, :], axis=2)
    strictly_less = np.any(objectives[:, None, :] < objectives[None, :, :], axis=2)
    objective_dominance = less_equal & strictly_less
    feasibility_dominance = feasible[:, None] & ~feasible[None, :]
    same_feasibility = feasible[:, None] == feasible[None, :]
    matrix = feasibility_dominance | (same_feasibility & objective_dominance)
    np.fill_diagonal(matrix, False)
    return matrix


def non_dominated(population: list[Individual]) -> list[Individual]:
    """Return the non-dominated subset of ``population``."""
    if not population:
        return []
    matrix = dominance_matrix(population)
    dominated = matrix.any(axis=0)
    return [individual for individual, flag in zip(population, dominated) if not flag]


def pareto_ranks(population: list[Individual]) -> np.ndarray:
    """Non-dominated sorting ranks (0 = first front), as used by NSGA-II.

    Also writes the rank back onto each individual's ``rank`` attribute.
    """
    size = len(population)
    ranks = np.full(size, -1, dtype=np.int64)
    if size == 0:
        return ranks
    matrix = dominance_matrix(population)
    domination_counts = matrix.sum(axis=0).astype(np.int64)
    dominated_sets = [np.flatnonzero(matrix[index]) for index in range(size)]
    current_front = list(np.flatnonzero(domination_counts == 0))
    front_index = 0
    remaining = size
    while current_front:
        next_front: list[int] = []
        for index in current_front:
            ranks[index] = front_index
            remaining -= 1
            for dominated_index in dominated_sets[index]:
                domination_counts[dominated_index] -= 1
                if domination_counts[dominated_index] == 0:
                    next_front.append(int(dominated_index))
        current_front = next_front
        front_index += 1
    # Defensive: every individual must have been assigned a rank.
    assert remaining == 0, "non-dominated sorting failed to rank every individual"
    for individual, rank in zip(population, ranks):
        individual.rank = int(rank)
    return ranks


def non_dominated_objectives(objectives: np.ndarray) -> np.ndarray:
    """Filter a raw objective array down to its non-dominated rows.

    A convenience for working with plain ``(n_points, n_objectives)`` arrays
    (e.g. baseline scheme sweeps) without wrapping them in individuals.
    """
    points = np.asarray(objectives, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"objectives must be 2-D, got shape {points.shape}")
    if points.shape[0] == 0:
        return points
    keep = np.ones(points.shape[0], dtype=bool)
    for index in range(points.shape[0]):
        if not keep[index]:
            continue
        others = points[keep]
        dominated = np.any(
            np.all(others <= points[index], axis=1) & np.any(others < points[index], axis=1)
        )
        if dominated:
            keep[index] = False
    return points[keep]
