"""Quality indicators for comparing Pareto fronts.

The paper compares schemes by plotting their Pareto fronts; these indicators
turn that visual comparison into numbers the benchmark harness can print and
the tests can assert on:

* **hypervolume** (2-D exact) — area dominated by a front relative to a
  reference point; larger is better.
* **coverage** (the C-metric) — fraction of one front dominated by another.
* **additive epsilon indicator** — how much one front must be translated to
  weakly dominate another.
* **spread** — extent of the front along each objective.

All indicators assume minimisation of every objective.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def _as_front(points: np.ndarray) -> np.ndarray:
    array = np.asarray(points, dtype=np.float64)
    if array.ndim != 2 or array.shape[1] < 1:
        raise ValidationError(f"a front must be a 2-D array of points, got shape {array.shape}")
    if array.shape[0] == 0:
        raise ValidationError("a front must contain at least one point")
    if not np.all(np.isfinite(array)):
        raise ValidationError("front points must be finite")
    return array


def hypervolume_2d(front: np.ndarray, reference: tuple[float, float]) -> float:
    """Exact hypervolume (area) dominated by a 2-D front.

    Parameters
    ----------
    front:
        Array of shape ``(n_points, 2)``; both objectives minimised.
    reference:
        Reference point; points not strictly better than the reference in both
        objectives contribute nothing.
    """
    points = _as_front(front)
    if points.shape[1] != 2:
        raise ValidationError("hypervolume_2d only supports two objectives")
    ref = np.asarray(reference, dtype=np.float64)
    if ref.shape != (2,):
        raise ValidationError("reference must be a 2-element point")
    # Keep only points that dominate the reference point.
    mask = np.all(points < ref, axis=1)
    points = points[mask]
    if points.shape[0] == 0:
        return 0.0
    # Sort by the first objective ascending; sweep and accumulate rectangles.
    order = np.lexsort((points[:, 1], points[:, 0]))
    points = points[order]
    area = 0.0
    best_second = ref[1]
    for first, second in points:
        if second < best_second:
            area += (ref[0] - first) * (best_second - second)
            best_second = second
    return float(area)


def finite_front_hypervolume_2d(
    front: np.ndarray, reference: tuple[float, float]
) -> float | None:
    """:func:`hypervolume_2d` over the finite rows of a possibly-unclean front.

    The stepwise driver and the hypervolume-stagnation termination criterion
    both measure live optimizer fronts, which may contain sentinel values
    (e.g. the singular-utility penalty is finite, but generic problems may
    emit ``inf``); rows with non-finite entries are dropped first.  Returns
    ``None`` when no finite points remain — callers decide whether that
    means "unknown" or "no progress".
    """
    front = np.asarray(front, dtype=np.float64)
    front = front[np.all(np.isfinite(front), axis=1)]
    if front.shape[0] == 0:
        return None
    return hypervolume_2d(front, reference)


def coverage(front_a: np.ndarray, front_b: np.ndarray) -> float:
    """C-metric ``C(A, B)``: fraction of points in ``B`` weakly dominated by at
    least one point in ``A``.  ``C(A, B) = 1`` means ``A`` covers ``B``."""
    a = _as_front(front_a)
    b = _as_front(front_b)
    if a.shape[1] != b.shape[1]:
        raise ValidationError("fronts must have the same number of objectives")
    dominated = 0
    for point in b:
        weakly = np.all(a <= point, axis=1) & np.any(a < point, axis=1)
        equal = np.all(a == point, axis=1)
        if np.any(weakly | equal):
            dominated += 1
    return dominated / b.shape[0]


def epsilon_indicator(front_a: np.ndarray, front_b: np.ndarray) -> float:
    """Additive epsilon indicator ``I_eps+(A, B)``.

    The smallest value ``eps`` such that every point of ``B`` is weakly
    dominated by some point of ``A`` translated by ``eps`` in every objective.
    Smaller (more negative) is better for ``A``.
    """
    a = _as_front(front_a)
    b = _as_front(front_b)
    if a.shape[1] != b.shape[1]:
        raise ValidationError("fronts must have the same number of objectives")
    # For each b point: the best (smallest) over a of the worst per-objective
    # shortfall; epsilon is the worst over b.
    differences = a[:, None, :] - b[None, :, :]
    per_pair = differences.max(axis=2)
    per_b = per_pair.min(axis=0)
    return float(per_b.max())


def spread_2d(front: np.ndarray) -> tuple[float, float]:
    """Extent of a 2-D front along each objective (max - min per objective)."""
    points = _as_front(front)
    if points.shape[1] != 2:
        raise ValidationError("spread_2d only supports two objectives")
    extents = points.max(axis=0) - points.min(axis=0)
    return float(extents[0]), float(extents[1])
