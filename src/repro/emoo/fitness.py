"""SPEA2 fitness assignment (Section V-B of the paper).

Fitness is assigned to the union of the archive and the population:

1. every individual ``i`` gets a *strength* ``S(i)`` — the number of
   individuals it dominates;
2. the *raw fitness* ``F'(i)`` is the sum of the strengths of all individuals
   that dominate ``i`` (0 for non-dominated individuals);
3. the *density* ``d(i) = 1 / (sigma_i^k + 2)`` breaks ties;
4. the final fitness is ``F(i) = F'(i) + d(i)``.

Lower fitness is better; non-dominated individuals are exactly those with
``F(i) < 1``.  The computation is array-level
(:func:`spea2_fitness_from_arrays`); :func:`assign_spea2_fitness` wraps it
for ``Individual`` lists and writes the bookkeeping fields back.
"""

from __future__ import annotations

import numpy as np

from repro.emoo.density import spea2_density
from repro.emoo.dominance import dominance_matrix_from_arrays, feasibility_array
from repro.emoo.individual import Individual, objectives_array


def spea2_fitness_from_arrays(
    objectives: np.ndarray,
    feasible: np.ndarray | None = None,
    k: int = 1,
    *,
    distances: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SPEA2 strength, density and fitness over raw objective arrays.

    Returns ``(strengths, densities, fitness)``; every step (dominance
    matrix, strength sums, raw fitness, kth-nearest density) is a matrix
    reduction with no per-individual Python work.  ``distances`` optionally
    supplies a precomputed pairwise objective-distance matrix so the
    generation loop computes it once and shares it with archive truncation.
    """
    objectives = np.asarray(objectives, dtype=np.float64)
    size = objectives.shape[0]
    if size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0), np.zeros(0)
    matrix = dominance_matrix_from_arrays(objectives, feasible)
    strengths = matrix.sum(axis=1)
    raw_fitness = (matrix * strengths[:, None]).sum(axis=0).astype(np.float64)
    densities = spea2_density(objectives, k, distances=distances)
    return strengths, densities, raw_fitness + densities


def assign_spea2_fitness(population: list[Individual], k: int = 1) -> np.ndarray:
    """Assign SPEA2 fitness in place to every individual in ``population``.

    ``population`` should be the multiset union of the current archive and
    the current population (the paper's ``Q_t + V_t``).  Returns the fitness
    array so callers can keep working on arrays without re-reading the
    attributes.
    """
    if not population:
        return np.zeros(0)
    strengths, densities, fitness = spea2_fitness_from_arrays(
        objectives_array(population), feasibility_array(population), k
    )
    for index, individual in enumerate(population):
        individual.strength = int(strengths[index])
        individual.density = float(densities[index])
        individual.fitness = float(fitness[index])
    return fitness


def non_dominated_by_fitness(population: list[Individual]) -> list[Individual]:
    """Individuals whose SPEA2 fitness marks them as non-dominated (F < 1).

    ``assign_spea2_fitness`` must have been called on the same population
    first.
    """
    return [individual for individual in population if individual.fitness < 1.0]
