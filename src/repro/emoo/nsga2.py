"""NSGA-II: an alternative EMOO algorithm used for ablation benchmarks.

The paper chooses SPEA2 on the strength of published comparison studies.  To
make that design choice checkable in this reproduction, the benchmark harness
runs the same RR-matrix problem through NSGA-II (non-dominated sorting plus
crowding distance) and compares the resulting fronts with the
front-quality indicators in :mod:`repro.emoo.indicators`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.emoo.dominance import non_dominated, pareto_ranks
from repro.emoo.individual import Individual, objectives_array
from repro.emoo.problem import Problem
from repro.emoo.termination import GenerationState, MaxGenerations, TerminationCriterion
from repro.exceptions import OptimizationError
from repro.types import SeedLike, as_rng
from repro.utils.validation import check_in_unit_interval, check_positive_int


@dataclass(frozen=True)
class NSGA2Settings:
    """Hyper-parameters of the NSGA-II run."""

    population_size: int = 50
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3

    def __post_init__(self) -> None:
        check_positive_int(self.population_size, "population_size")
        check_in_unit_interval(self.crossover_rate, "crossover_rate")
        check_in_unit_interval(self.mutation_rate, "mutation_rate")


@dataclass
class NSGA2Result:
    """Outcome of an NSGA-II run."""

    population: list[Individual]
    front: list[Individual]
    n_generations: int
    n_evaluations: int


def crowding_distances_from_objectives(objectives: np.ndarray) -> np.ndarray:
    """Crowding distance of every row of a single front's objective array.

    Pure array computation (one stable argsort per objective); callers that
    work with ``Individual`` lists use :func:`crowding_distances`.
    """
    objectives = np.asarray(objectives, dtype=np.float64)
    size = objectives.shape[0]
    if size == 0:
        return np.empty(0)
    distances = np.zeros(size, dtype=np.float64)
    for objective_index in range(objectives.shape[1]):
        order = np.argsort(objectives[:, objective_index], kind="stable")
        values = objectives[order, objective_index]
        distances[order[0]] = np.inf
        distances[order[-1]] = np.inf
        value_range = values[-1] - values[0]
        if value_range <= 0 or size <= 2:
            continue
        spacing = (values[2:] - values[:-2]) / value_range
        distances[order[1:-1]] += spacing
    return distances


def crowding_distances(front: list[Individual]) -> np.ndarray:
    """Crowding distance of every individual in a single front.

    Also writes the distance back onto each individual's ``crowding``
    attribute.
    """
    if not front:
        return np.empty(0)
    distances = crowding_distances_from_objectives(objectives_array(front))
    for individual, distance in zip(front, distances):
        individual.crowding = float(distance)
    return distances


def _crowded_better(first: Individual, second: Individual) -> bool:
    """NSGA-II crowded-comparison operator: lower rank wins, ties broken by
    larger crowding distance."""
    if first.rank != second.rank:
        return first.rank < second.rank
    return first.crowding > second.crowding


@dataclass
class NSGA2:
    """The NSGA-II evolutionary multi-objective optimizer."""

    problem: Problem
    settings: NSGA2Settings = field(default_factory=NSGA2Settings)
    termination: TerminationCriterion = field(default_factory=lambda: MaxGenerations(100))
    seed: SeedLike = None

    def run(self) -> NSGA2Result:
        """Run the optimization and return the result."""
        rng = as_rng(self.seed)
        self.termination.reset()
        settings = self.settings
        population = self.problem.initial_population(settings.population_size, rng)
        if not population:
            raise OptimizationError("the problem produced an empty initial population")
        self._rank_and_crowd(population)
        n_evaluations = len(population)
        generation = 0
        while True:
            offspring = self.problem.evaluate_genomes(self._make_offspring(population, rng))
            n_evaluations += len(offspring)
            population = self._select_next_generation(population + offspring)
            state = GenerationState(generation=generation, archive_updates=1)
            if self.termination.should_stop(state):
                break
            generation += 1
        front = non_dominated(population)
        return NSGA2Result(
            population=population,
            front=front,
            n_generations=generation + 1,
            n_evaluations=n_evaluations,
        )

    # -- internals -----------------------------------------------------------
    def _rank_and_crowd(self, population: list[Individual]) -> None:
        ranks = pareto_ranks(population)
        objectives = objectives_array(population)
        for rank in range(int(ranks.max()) + 1 if ranks.size else 0):
            front_index = np.flatnonzero(ranks == rank)
            distances = crowding_distances_from_objectives(objectives[front_index])
            for index, distance in zip(front_index, distances):
                population[index].crowding = float(distance)

    def _select_next_generation(self, union: list[Individual]) -> list[Individual]:
        target = self.settings.population_size
        ranks = pareto_ranks(union)
        objectives = objectives_array(union)
        next_population: list[Individual] = []
        for rank in range(int(ranks.max()) + 1):
            front_index = np.flatnonzero(ranks == rank)
            distances = crowding_distances_from_objectives(objectives[front_index])
            for index, distance in zip(front_index, distances):
                union[index].crowding = float(distance)
            if len(next_population) + front_index.size <= target:
                next_population.extend(union[index] for index in front_index)
            else:
                # Stable sort on negated crowding keeps original order between
                # ties, matching the list.sort(reverse=True) it replaces.
                order = np.argsort(-distances, kind="stable")
                needed = target - len(next_population)
                next_population.extend(union[front_index[index]] for index in order[:needed])
            if len(next_population) >= target:
                break
        return next_population

    def _make_offspring(self, population: list[Individual], rng: np.random.Generator) -> list:
        settings = self.settings
        genomes = []
        while len(genomes) < settings.population_size:
            parent_a = self._tournament(population, rng)
            parent_b = self._tournament(population, rng)
            if rng.random() < settings.crossover_rate:
                child_a, child_b = self.problem.crossover(parent_a.genome, parent_b.genome, rng)
            else:
                child_a, child_b = parent_a.genome, parent_b.genome
            genomes.extend([child_a, child_b])
        genomes = genomes[: settings.population_size]
        finished = []
        for genome in genomes:
            if rng.random() < settings.mutation_rate:
                genome = self.problem.mutate(genome, rng)
            finished.append(genome)
        # Repair runs over the whole offspring list at once so batch-capable
        # problems (RR matrices) vectorize it.
        return self.problem.repair_genomes(finished, rng)

    def _tournament(self, population: list[Individual], rng: np.random.Generator) -> Individual:
        first, second = rng.integers(0, len(population), size=2)
        a, b = population[first], population[second]
        return a if _crowded_better(a, b) else b
