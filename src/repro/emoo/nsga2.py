"""NSGA-II: an alternative EMOO algorithm used for ablation benchmarks.

The paper chooses SPEA2 on the strength of published comparison studies.  To
make that design choice checkable in this reproduction, the benchmark harness
runs the same RR-matrix problem through NSGA-II (non-dominated sorting plus
crowding distance) and compares the resulting fronts with the
front-quality indicators in :mod:`repro.emoo.indicators`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.emoo.dominance import non_dominated, pareto_ranks_from_arrays
from repro.emoo.driver import (
    OptimizationDriver,
    StepOutcome,
    SteppableOptimization,
    build_driver,
    population_from_document,
    population_to_document,
    workload_fingerprint,
)
from repro.emoo.fidelity import FidelitySchedule, FidelityScheduler
from repro.emoo.individual import Individual, objectives_array
from repro.emoo.population import Population
from repro.emoo.problem import Problem
from repro.emoo.termination import MaxGenerations, TerminationCriterion
from repro.exceptions import OptimizationError
from repro.types import SeedLike, as_rng
from repro.utils.arrays import decode_array, encode_array
from repro.utils.validation import check_in_unit_interval, check_positive_int

#: Callback invoked after each generation with (generation index, population).
GenerationCallback = Callable[[int, list[Individual]], None]


@dataclass(frozen=True)
class NSGA2Settings:
    """Hyper-parameters of the NSGA-II run."""

    population_size: int = 50
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3

    def __post_init__(self) -> None:
        check_positive_int(self.population_size, "population_size")
        check_in_unit_interval(self.crossover_rate, "crossover_rate")
        check_in_unit_interval(self.mutation_rate, "mutation_rate")


@dataclass
class NSGA2Result:
    """Outcome of an NSGA-II run."""

    population: list[Individual]
    front: list[Individual]
    n_generations: int
    n_evaluations: int


def crowding_distances_from_objectives(objectives: np.ndarray) -> np.ndarray:
    """Crowding distance of every row of a single front's objective array.

    Pure array computation (one stable argsort per objective); callers that
    work with ``Individual`` lists use :func:`crowding_distances`.
    """
    objectives = np.asarray(objectives, dtype=np.float64)
    size = objectives.shape[0]
    if size == 0:
        return np.empty(0)
    distances = np.zeros(size, dtype=np.float64)
    for objective_index in range(objectives.shape[1]):
        order = np.argsort(objectives[:, objective_index], kind="stable")
        values = objectives[order, objective_index]
        distances[order[0]] = np.inf
        distances[order[-1]] = np.inf
        value_range = values[-1] - values[0]
        if value_range <= 0 or size <= 2:
            continue
        spacing = (values[2:] - values[:-2]) / value_range
        distances[order[1:-1]] += spacing
    return distances


def crowding_distances(front: list[Individual]) -> np.ndarray:
    """Crowding distance of every individual in a single front.

    Also writes the distance back onto each individual's ``crowding``
    attribute.
    """
    if not front:
        return np.empty(0)
    distances = crowding_distances_from_objectives(objectives_array(front))
    for individual, distance in zip(front, distances):
        individual.crowding = float(distance)
    return distances


def _crowded_better(first: Individual, second: Individual) -> bool:
    """NSGA-II crowded-comparison operator: lower rank wins, ties broken by
    larger crowding distance."""
    if first.rank != second.rank:
        return first.rank < second.rank
    return first.crowding > second.crowding


@dataclass
class NSGA2:
    """The NSGA-II evolutionary multi-objective optimizer.

    ``fidelity`` optionally enables multi-fidelity offspring evaluation with
    promotion of the top fraction (see :mod:`repro.emoo.fidelity`); it
    requires a problem whose ``evaluate_genomes`` supports the ``fidelity``
    keyword, and ``None`` keeps the exact single-fidelity path.
    """

    problem: Problem
    settings: NSGA2Settings = field(default_factory=NSGA2Settings)
    termination: TerminationCriterion = field(default_factory=lambda: MaxGenerations(100))
    seed: SeedLike = None
    fidelity: FidelitySchedule | None = None

    def run(self, on_generation: GenerationCallback | None = None) -> NSGA2Result:
        """Run the optimization and return the result.

        Thin wrapper over the stepwise driver (:meth:`driver`).  Array-native:
        rank and crowding live as arrays alongside a structure-of-arrays
        :class:`~repro.emoo.population.Population`; the crowded binary
        tournament draws and decides every pair in one vectorized step;
        per-individual attribute writes happen only at the result boundary.

        ``on_generation`` mirrors the SPEA2 callback: it receives the
        generation index and the surviving population as ``Individual``
        views (rank and crowding annotated), materialised only when a
        callback is registered.
        """
        driver = self.driver()
        algorithm = driver.optimization
        for snapshot in driver.steps():
            if on_generation is not None:
                on_generation(snapshot.generation, algorithm.elite_individuals())
        return driver.result()

    def driver(
        self,
        *,
        seed: SeedLike = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int | None = None,
        deadline: float | None = None,
    ) -> OptimizationDriver:
        """Build the stepwise driver for this NSGA-II instance (same
        contract as :meth:`repro.emoo.spea2.SPEA2.driver`, including the
        ambient checkpoint scope)."""
        return build_driver(
            _NSGA2Steppable(self),
            termination=self.termination,
            rng=as_rng(seed if seed is not None else self.seed),
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            deadline=deadline,
        )

    # -- internals -----------------------------------------------------------
    def _rank_and_crowd_arrays(
        self, population: Population
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pareto ranks and per-front crowding distances as arrays."""
        ranks = pareto_ranks_from_arrays(population.objectives, population.feasible)
        crowding = np.zeros(population.size)
        for rank in range(int(ranks.max()) + 1 if ranks.size else 0):
            front_index = np.flatnonzero(ranks == rank)
            crowding[front_index] = crowding_distances_from_objectives(
                population.objectives[front_index]
            )
        return ranks, crowding

    def _select_next_generation(
        self, union: Population
    ) -> tuple[Population, np.ndarray, np.ndarray]:
        """Fill the next generation front by front, splitting the last front
        on crowding distance; returns the survivors with their rank and
        crowding arrays (aligned to the returned population)."""
        target = self.settings.population_size
        ranks = pareto_ranks_from_arrays(union.objectives, union.feasible)
        crowding = np.zeros(union.size)
        chosen: list[np.ndarray] = []
        n_chosen = 0
        for rank in range(int(ranks.max()) + 1):
            front_index = np.flatnonzero(ranks == rank)
            distances = crowding_distances_from_objectives(union.objectives[front_index])
            crowding[front_index] = distances
            if n_chosen + front_index.size <= target:
                chosen.append(front_index)
                n_chosen += front_index.size
            else:
                # Stable sort on negated crowding keeps original order between
                # ties, matching the list.sort(reverse=True) it replaces.
                order = np.argsort(-distances, kind="stable")
                chosen.append(front_index[order[: target - n_chosen]])
                n_chosen = target
            if n_chosen >= target:
                break
        selected = np.concatenate(chosen)
        return union.take(selected), ranks[selected], crowding[selected]

    def _make_offspring(
        self,
        population: Population,
        ranks: np.ndarray,
        crowding: np.ndarray,
        rng: np.random.Generator,
    ) -> list:
        """Crowded-tournament mating selection + crossover + mutation.

        All tournament pairs and the crossover/mutation decision masks are
        drawn up front in vectorized steps (one ``integers`` call for the
        parents, one ``random`` call per mask); genome variation stays
        per-pair because genomes are opaque at this layer.
        """
        settings = self.settings
        n_pairs = (settings.population_size + 1) // 2
        contenders = rng.integers(0, population.size, size=(2 * n_pairs, 2))
        winners = self._crowded_winners(contenders, ranks, crowding)
        crossed = rng.random(size=n_pairs) < settings.crossover_rate
        genomes = []
        for pair in range(n_pairs):
            first = population.genome_at(winners[2 * pair])
            second = population.genome_at(winners[2 * pair + 1])
            if crossed[pair]:
                child_a, child_b = self.problem.crossover(first, second, rng)
            else:
                child_a, child_b = first, second
            genomes.extend([child_a, child_b])
        genomes = genomes[: settings.population_size]
        mutated_mask = rng.random(size=len(genomes)) < settings.mutation_rate
        finished = []
        for index, genome in enumerate(genomes):
            if mutated_mask[index]:
                genome = self.problem.mutate(genome, rng)
            finished.append(genome)
        # Repair runs over the whole offspring list at once so batch-capable
        # problems (RR matrices) vectorize it.
        return self.problem.repair_genomes(finished, rng)

    @staticmethod
    def _crowded_winners(
        contenders: np.ndarray, ranks: np.ndarray, crowding: np.ndarray
    ) -> np.ndarray:
        """Vectorized crowded-comparison tournaments: lower rank wins, ties
        broken by larger crowding distance, full ties go to the second
        contestant (as in the sequential :func:`_crowded_better`)."""
        first, second = contenders[:, 0], contenders[:, 1]
        first_wins = (ranks[first] < ranks[second]) | (
            (ranks[first] == ranks[second]) & (crowding[first] > crowding[second])
        )
        return np.where(first_wins, first, second)


class _NSGA2Steppable(SteppableOptimization):
    """The NSGA-II generation loop decomposed for the stepwise driver.

    The rank and crowding arrays are part of the checkpointed state: mating
    selection at generation ``g+1`` reads the arrays produced by the
    environmental selection of generation ``g``.
    """

    algorithm_name = "nsga2"

    def __init__(self, algorithm: NSGA2) -> None:
        self._algorithm = algorithm
        self.population: Population | None = None
        self.ranks: np.ndarray | None = None
        self.crowding: np.ndarray | None = None
        self.n_evaluations = 0
        self.fidelity: FidelityScheduler | None = (
            FidelityScheduler(algorithm.fidelity) if algorithm.fidelity is not None else None
        )

    def setup(self, rng: np.random.Generator) -> None:
        algorithm = self._algorithm
        initial = algorithm.problem.initial_population(
            algorithm.settings.population_size, rng
        )
        if not initial:
            raise OptimizationError("the problem produced an empty initial population")
        self.population = Population.from_individuals(initial)
        self.ranks, self.crowding = algorithm._rank_and_crowd_arrays(self.population)
        self.n_evaluations = self.population.size

    def step(self, rng: np.random.Generator, generation: int) -> StepOutcome:
        algorithm = self._algorithm
        offspring_genomes = algorithm._make_offspring(
            self.population, self.ranks, self.crowding, rng
        )
        if self.fidelity is None:
            individuals = algorithm.problem.evaluate_genomes(offspring_genomes)
            self.n_evaluations += len(individuals)
        else:
            spent = self.fidelity.n_low_evaluations + self.fidelity.n_full_evaluations
            individuals = self.fidelity.evaluate_individuals(
                algorithm.problem, offspring_genomes
            )
            self.n_evaluations += (
                self.fidelity.n_low_evaluations + self.fidelity.n_full_evaluations - spent
            )
        offspring = Population.from_individuals(individuals)
        union = Population.concat(self.population, offspring)
        self.population, self.ranks, self.crowding = algorithm._select_next_generation(
            union
        )
        n_low = self.fidelity.n_low_evaluations if self.fidelity is not None else 0
        return StepOutcome(
            archive_updates=1,
            front_objectives=self.population.objectives[self.ranks == 0],
            n_evaluations=self.n_evaluations,
            n_full_evaluations=self.n_evaluations - n_low,
            n_low_evaluations=n_low,
        )

    def notify_progress(self, elapsed_seconds: float, deadline_seconds: float | None) -> None:
        if self.fidelity is not None:
            self.fidelity.adapt(elapsed_seconds, deadline_seconds)

    def finish(self, generation: int) -> NSGA2Result:
        individuals = self.elite_individuals()
        front = non_dominated(individuals)
        return NSGA2Result(
            population=individuals,
            front=front,
            n_generations=generation + 1,
            n_evaluations=self.n_evaluations,
        )

    def elite_individuals(self) -> list[Individual]:
        # Result boundary: materialise views with their rank/crowding fields.
        individuals = self.population.to_individuals()
        for index, individual in enumerate(individuals):
            individual.rank = int(self.ranks[index])
            individual.crowding = float(self.crowding[index])
        return individuals

    def setup_fingerprint(self) -> str:
        from dataclasses import asdict

        payload = {
            "algorithm": self.algorithm_name,
            "problem": self._algorithm.problem.fingerprint_document(),
            "settings": asdict(self._algorithm.settings),
        }
        # Keyed only when scheduling is on, so fingerprints of plain runs
        # stay identical to pre-fidelity checkpoints.
        if self._algorithm.fidelity is not None:
            payload["fidelity"] = asdict(self._algorithm.fidelity)
        return workload_fingerprint(payload)

    def state_document(self) -> dict:
        document = {
            "population": population_to_document(self.population, self._algorithm.problem),
            "ranks": encode_array(self.ranks),
            "crowding": encode_array(self.crowding),
            "n_evaluations": self.n_evaluations,
        }
        if self.fidelity is not None:
            document["fidelity"] = self.fidelity.state_document()
        return document

    def restore_state(self, document: dict) -> None:
        self.population = population_from_document(
            document["population"], self._algorithm.problem
        )
        self.ranks = decode_array(document["ranks"])
        self.crowding = decode_array(document["crowding"])
        self.n_evaluations = int(document["n_evaluations"])
        fidelity_state = document.get("fidelity")
        if self.fidelity is not None and fidelity_state is not None:
            self.fidelity.restore_state(fidelity_state)
