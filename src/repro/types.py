"""Shared type aliases and protocols used across the library."""

from __future__ import annotations

from typing import Protocol, Sequence, Union

import numpy as np
from numpy.typing import NDArray

#: A probability vector over the categorical domain (sums to one).
ProbabilityVector = NDArray[np.float64]

#: A column-stochastic randomized-response matrix.
MatrixLike = Union[NDArray[np.float64], Sequence[Sequence[float]]]

#: Anything accepted where a random generator is needed.
SeedLike = Union[None, int, np.random.Generator]


class SupportsObjectives(Protocol):
    """Anything exposing a 2-element objective vector (privacy, utility)."""

    @property
    def objectives(self) -> NDArray[np.float64]:  # pragma: no cover - protocol
        ...


def as_rng(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a fresh non-deterministic generator, an ``int`` seeds a
    new generator, and an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
