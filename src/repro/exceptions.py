"""Exception hierarchy for the ``repro`` (OptRR) library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Sub-classes map onto the major subsystems: the
randomized-response substrate, the privacy/utility metrics, the evolutionary
optimizer, the data generators, and the experiment harness.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class ValidationError(ReproError, ValueError):
    """An input failed validation (shape, range, stochasticity, ...)."""


class RRMatrixError(ValidationError):
    """An RR matrix is malformed (not square, not column-stochastic, ...)."""


class SingularMatrixError(ReproError):
    """An RR matrix is singular (or numerically close to singular) and the
    inversion-based estimator cannot be applied."""


class EstimationError(ReproError):
    """A distribution estimation procedure failed (e.g. the iterative
    estimator did not converge within the iteration budget)."""


class InfeasibleBoundError(ReproError):
    """The requested worst-case privacy bound ``delta`` cannot be satisfied.

    Theorem 5 in the paper shows ``max_Y P(X_hat | Y) >= max_X P(X)``; a bound
    below the largest prior probability is impossible for any RR matrix.
    """


class OptimizationError(ReproError):
    """The evolutionary optimizer was configured or driven incorrectly."""


class DataError(ValidationError):
    """A dataset or distribution specification is invalid."""


class ExperimentError(ReproError):
    """An experiment is unknown or was configured inconsistently."""


class CheckpointCorruptionError(ValidationError):
    """A checkpoint file exists but cannot be decoded or validated.

    Distinct from a *missing* checkpoint (:class:`FileNotFoundError`): a
    corrupt file is quarantined and resume falls back to the previous valid
    checkpoint, while a missing one simply means a fresh start.
    """


class GridCellError(ReproError):
    """A grid cell exhausted its attempts without producing a result.

    Raised (when quarantine is disabled) for failure modes that leave no
    Python exception to re-raise — a worker process that died or was killed
    for exceeding the cell timeout.  ``failure`` carries the cell's full
    attempt history (a :class:`repro.experiments.grid.CellFailure`).
    """

    def __init__(self, message: str, failure: object | None = None) -> None:
        super().__init__(message)
        self.failure = failure


class FaultInjectedError(ReproError):
    """An error deliberately raised by the fault-injection harness
    (:mod:`repro.faults`) — never seen outside chaos tests."""


class BackendError(ReproError):
    """An array backend was requested that the registry does not know."""


class BackendUnavailableError(BackendError):
    """A known array backend cannot run in this environment (its optional
    dependency is not importable); the message carries the install hint."""
