"""The deterministic fault plan: grammar, model and activation.

A :class:`FaultPlan` is a static, fully deterministic description of which
faults fire where.  Chaos tests build one programmatically (or via the
``REPRO_FAULTS`` environment variable, which worker processes inherit) and
every run under the same plan injects the identical fault sequence — the
property that makes a chaos test a *test* rather than a dice roll.

Grammar (``REPRO_FAULTS``)
--------------------------
Semicolon-separated clauses, each::

    <kind>@<site>:<selector>[*<times>][=<value>][%<probability>]

* ``kind`` — one of :data:`FAULT_KINDS`:

  - ``crash``               the worker process dies (``os._exit``);
  - ``error``               a :class:`~repro.exceptions.FaultInjectedError`
                            is raised inside the cell;
  - ``oserror``             a transient :class:`OSError` is raised inside
                            the cell (the classic retryable fault);
  - ``hang``                the cell sleeps ``value`` seconds (default
                            3600) before doing any work — long enough to
                            trip any configured cell timeout;
  - ``corrupt-cache``       the cell's freshly stored cache document is
                            overwritten with truncated JSON;
  - ``truncate-checkpoint`` a just-written checkpoint file is truncated to
                            half its bytes.

* ``site:selector`` — where the fault applies:

  - ``cell:<index>`` / ``cell:*`` — the grid cell at that index (or every
    cell) for the in-cell kinds and ``corrupt-cache``;
  - ``file:<substring>`` — checkpoint files whose *name* contains the
    substring (``truncate-checkpoint`` only).

* ``*<times>`` — fire only on the first ``times`` attempts of a cell
  (1-based; omitted = every attempt).  ``oserror@cell:1*2`` is the
  transient fault that fails twice and then lets the cell succeed.

* ``=<value>`` — numeric parameter (currently the ``hang`` duration in
  seconds).

* ``%<probability>`` — fire with this probability instead of always.  The
  draw is a pure function of ``(plan seed, kind, site, index, attempt)``
  through :class:`numpy.random.SeedSequence`, so the same plan replays the
  same faults bit for bit; see :meth:`FaultSpec.fires`.

A leading ``seed=<int>`` clause sets the plan seed (default 0)::

    REPRO_FAULTS='seed=7; oserror@cell:*%0.2; hang@cell:3=30'
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

#: Fault kinds injected inside a running grid cell.
CELL_KINDS = frozenset({"crash", "error", "oserror", "hang"})

#: Fault kinds that corrupt freshly written state instead.
CORRUPTION_KINDS = frozenset({"corrupt-cache", "truncate-checkpoint"})

#: Every recognized fault kind.
FAULT_KINDS = CELL_KINDS | CORRUPTION_KINDS

#: Default ``hang`` duration (seconds) — effectively forever next to any
#: realistic ``--cell-timeout``.
DEFAULT_HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault clause.

    Attributes
    ----------
    kind:
        A member of :data:`FAULT_KINDS`.
    site:
        ``"cell"`` or ``"file"``.
    selector:
        Cell index as text, ``"*"``, or a file-name substring.
    times:
        Fire only on attempts ``1..times`` (None = every attempt).
    value:
        Numeric parameter (hang seconds); None when the kind takes none.
    probability:
        Seeded firing probability in ``(0, 1]``; None fires always.
    """

    kind: str
    site: str
    selector: str
    times: int | None = None
    value: float | None = None
    probability: float | None = None

    def matches_cell(self, index: int) -> bool:
        """Whether this spec targets the grid cell at ``index``."""
        return self.site == "cell" and (
            self.selector == "*" or self.selector == str(index)
        )

    def matches_file(self, name: str) -> bool:
        """Whether this spec targets a file named ``name``."""
        return self.site == "file" and self.selector in name

    def fires(self, seed: int, index: int, attempt: int) -> bool:
        """Whether the fault fires on this ``(cell, attempt)`` coordinate.

        Pure function of its arguments plus the plan seed: the probabilistic
        draw routes through a :class:`~numpy.random.SeedSequence` keyed by
        ``(seed, kind, site, index, attempt)``, so a plan replays the same
        fault pattern on every run, in every process.
        """
        if self.times is not None and attempt > self.times:
            return False
        if self.probability is None:
            return True
        entropy = int.from_bytes(
            hashlib.sha256(f"{self.kind}@{self.site}".encode("utf-8")).digest()[:8],
            "big",
        )
        rng = np.random.default_rng(
            np.random.SeedSequence([int(seed), entropy, int(index), int(attempt)])
        )
        return bool(rng.random() < self.probability)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable collection of fault clauses."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def cell_faults(self, index: int, attempt: int) -> tuple[FaultSpec, ...]:
        """The in-cell faults that fire on this ``(cell, attempt)``, in
        clause order."""
        return tuple(
            spec
            for spec in self.specs
            if spec.kind in CELL_KINDS
            and spec.matches_cell(index)
            and spec.fires(self.seed, index, attempt)
        )

    def cache_corruptions(self, index: int, attempt: int) -> tuple[FaultSpec, ...]:
        """The ``corrupt-cache`` faults that fire for this cell's stored
        document."""
        return tuple(
            spec
            for spec in self.specs
            if spec.kind == "corrupt-cache"
            and spec.matches_cell(index)
            and spec.fires(self.seed, index, attempt)
        )

    def checkpoint_truncations(self, name: str) -> tuple[FaultSpec, ...]:
        """The ``truncate-checkpoint`` faults targeting a checkpoint file
        called ``name``."""
        return tuple(
            spec
            for spec in self.specs
            if spec.kind == "truncate-checkpoint" and spec.matches_file(name)
        )


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse the ``REPRO_FAULTS`` grammar into a :class:`FaultPlan`.

    Raises :class:`~repro.exceptions.ValidationError` on any malformed
    clause — a chaos run with a typo'd plan must fail loudly, not silently
    inject nothing.
    """
    specs: list[FaultSpec] = []
    seed = 0
    for raw in text.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            seed = _parse_int(clause[len("seed="):], clause, "seed")
            continue
        specs.append(_parse_clause(clause))
    return FaultPlan(specs=tuple(specs), seed=seed)


def _parse_clause(clause: str) -> FaultSpec:
    head, probability = _split_suffix(clause, "%")
    head, value = _split_suffix(head, "=")
    # Only a trailing ``*<digits>`` is a times suffix — a bare ``*`` is the
    # every-cell selector (``cell:*``), not an empty repeat count.
    times = None
    times_match = re.search(r"\*(\d+)$", head)
    if times_match:
        times = times_match.group(1)
        head = head[: times_match.start()].strip()
    kind, separator, target = head.partition("@")
    kind = kind.strip()
    if not separator or kind not in FAULT_KINDS:
        raise ValidationError(
            f"fault clause {clause!r} must look like kind@site:selector with "
            f"kind one of {sorted(FAULT_KINDS)}"
        )
    site, colon, selector = target.partition(":")
    site = site.strip()
    selector = selector.strip()
    if not colon or not selector or site not in ("cell", "file"):
        raise ValidationError(
            f"fault clause {clause!r} needs a cell:<index|*> or "
            f"file:<substring> site"
        )
    if site == "cell" and selector != "*":
        _parse_int(selector, clause, "cell index")
    if site == "file" and kind != "truncate-checkpoint":
        raise ValidationError(
            f"fault clause {clause!r}: only truncate-checkpoint takes a "
            f"file:<substring> site"
        )
    parsed_times = None
    if times is not None:
        parsed_times = _parse_int(times, clause, "times")
        if parsed_times < 1:
            raise ValidationError(f"fault clause {clause!r}: times must be >= 1")
    parsed_value = None
    if value is not None:
        parsed_value = _parse_float(value, clause, "value")
    if kind == "hang" and parsed_value is None:
        parsed_value = DEFAULT_HANG_SECONDS
    parsed_probability = None
    if probability is not None:
        parsed_probability = _parse_float(probability, clause, "probability")
        if not 0.0 < parsed_probability <= 1.0:
            raise ValidationError(
                f"fault clause {clause!r}: probability must lie in (0, 1]"
            )
    return FaultSpec(
        kind=kind,
        site=site,
        selector=selector,
        times=parsed_times,
        value=parsed_value,
        probability=parsed_probability,
    )


def _split_suffix(text: str, marker: str) -> tuple[str, str | None]:
    head, separator, tail = text.partition(marker)
    return (head.strip(), tail.strip()) if separator else (head.strip(), None)


def _parse_int(text: str, clause: str, what: str) -> int:
    try:
        return int(text)
    except ValueError as exc:
        raise ValidationError(f"fault clause {clause!r}: bad {what} {text!r}") from exc


def _parse_float(text: str, clause: str, what: str) -> float:
    try:
        return float(text)
    except ValueError as exc:
        raise ValidationError(f"fault clause {clause!r}: bad {what} {text!r}") from exc
