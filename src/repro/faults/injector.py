"""Fault-injection hooks wired into the execution substrate.

The production code calls three tiny hooks — at cell start
(:func:`fire_cell_faults`), after a cache-document store
(:func:`corrupt_stored_document`) and after a checkpoint write
(:func:`truncate_checkpoint_file`).  When no plan is active each hook is a
single ``None`` check, so the fault machinery costs nothing on the fault-free
path.

A plan activates in one of two ways:

* :func:`install_fault_plan` / the :func:`fault_plan` context manager —
  in-process, for tests driving serial grids;
* the ``REPRO_FAULTS`` environment variable — parsed lazily (and cached per
  text value), and inherited by worker processes, so multi-worker chaos
  tests only need ``monkeypatch.setenv``.

Determinism: every decision is a pure function of the plan and the
``(cell index, attempt)`` coordinate (see :meth:`~repro.faults.plan.
FaultSpec.fires`); the hooks keep no mutable firing state at all.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.exceptions import FaultInjectedError
from repro.faults.plan import FaultPlan, FaultSpec, parse_fault_plan
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Environment variable carrying the fault plan (grammar in
#: :mod:`repro.faults.plan`).
FAULTS_ENVIRONMENT_VARIABLE = "REPRO_FAULTS"

#: Exit status of an injected worker crash — distinctive enough to spot in
#: a process table, unmistakable for a Python exception.
CRASH_EXIT_STATUS = 113

_INSTALLED: FaultPlan | None = None
_PARSED_ENVIRONMENT: tuple[str, FaultPlan] | None = None


def install_fault_plan(plan: FaultPlan | None) -> None:
    """Install (or with ``None`` clear) the in-process fault plan."""
    global _INSTALLED
    _INSTALLED = plan


@contextmanager
def fault_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the block (test fixture)."""
    previous = _INSTALLED
    install_fault_plan(plan)
    try:
        yield plan
    finally:
        install_fault_plan(previous)


def active_fault_plan() -> FaultPlan | None:
    """The plan in effect: the installed one, else ``REPRO_FAULTS``.

    The environment parse is cached per text value, so the per-cell hook
    cost stays at a dictionary read; an empty/unset variable means no plan.
    """
    global _PARSED_ENVIRONMENT
    if _INSTALLED is not None:
        return _INSTALLED
    text = os.environ.get(FAULTS_ENVIRONMENT_VARIABLE, "").strip()
    if not text:
        return None
    if _PARSED_ENVIRONMENT is None or _PARSED_ENVIRONMENT[0] != text:
        _PARSED_ENVIRONMENT = (text, parse_fault_plan(text))
    return _PARSED_ENVIRONMENT[1]


def fire_cell_faults(index: int, attempt: int) -> None:
    """Inject the in-cell faults planned for this ``(cell, attempt)``.

    Called at the top of every grid-cell execution, inside the process that
    runs the cell.  Injection order is clause order: a clause list
    ``hang@...; oserror@...`` sleeps first, then raises.
    """
    plan = active_fault_plan()
    if plan is None:
        return
    for spec in plan.cell_faults(index, attempt):
        _inject(spec, index, attempt)


def _inject(spec: FaultSpec, index: int, attempt: int) -> None:
    where = f"cell {index} attempt {attempt}"
    if spec.kind == "hang":
        logger.warning("fault injection: hanging %s for %.1fs", where, spec.value)
        time.sleep(float(spec.value if spec.value is not None else 0.0))
    elif spec.kind == "oserror":
        raise OSError(f"injected transient OSError at {where}")
    elif spec.kind == "error":
        raise FaultInjectedError(f"injected failure at {where}")
    elif spec.kind == "crash":
        logger.warning("fault injection: crashing worker at %s", where)
        # A hard process death — no exception, no cleanup, exactly what a
        # SIGKILL'd or OOM'd worker looks like to the parent.
        os._exit(CRASH_EXIT_STATUS)


def corrupt_stored_document(path: Path, index: int, attempt: int) -> None:
    """Corrupt a freshly stored cache document when the plan says so.

    The document is overwritten with a truncated prefix of its own bytes —
    undecodable JSON, exactly what a torn write (on a filesystem without
    atomic rename) or a partially synced page leaves behind.
    """
    plan = active_fault_plan()
    if plan is None:
        return
    if not plan.cache_corruptions(index, attempt):
        return
    _truncate_file(path, f"cache document for cell {index}")


def truncate_checkpoint_file(path: Path) -> None:
    """Truncate a freshly written checkpoint when the plan targets it."""
    plan = active_fault_plan()
    if plan is None:
        return
    if not plan.checkpoint_truncations(path.name):
        return
    _truncate_file(path, "checkpoint")


def _truncate_file(path: Path, what: str) -> None:
    try:
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
    except OSError as exc:  # pragma: no cover - injection i/o is best effort
        logger.warning("fault injection: could not corrupt %s: %s", path, exc)
        return
    logger.warning("fault injection: corrupted %s %s", what, path)
