"""Deterministic fault injection for chaos-testing the execution substrate.

The resilience guarantees of the grid/campaign/pipeline executors — retry,
timeout-and-kill, poison-cell quarantine, corruption-tolerant resume — are
only real if they can be *demonstrated*, reproducibly.  This package injects
worker crashes, hangs, transient ``OSError``\\ s and corrupted cache/checkpoint
state at chosen grid coordinates, driven by a seeded :class:`FaultPlan` that
makes every chaos run bit-for-bit repeatable.

Activate a plan programmatically (:func:`fault_plan` /
:func:`install_fault_plan`) or through the ``REPRO_FAULTS`` environment
variable, whose grammar is documented in :mod:`repro.faults.plan` and
``docs/robustness.md``.  Fault hooks are no-ops when no plan is active.
"""

from repro.faults.injector import (
    CRASH_EXIT_STATUS,
    FAULTS_ENVIRONMENT_VARIABLE,
    active_fault_plan,
    corrupt_stored_document,
    fault_plan,
    fire_cell_faults,
    install_fault_plan,
    truncate_checkpoint_file,
)
from repro.faults.plan import (
    DEFAULT_HANG_SECONDS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
)

__all__ = [
    "CRASH_EXIT_STATUS",
    "DEFAULT_HANG_SECONDS",
    "FAULT_KINDS",
    "FAULTS_ENVIRONMENT_VARIABLE",
    "FaultPlan",
    "FaultSpec",
    "active_fault_plan",
    "corrupt_stored_document",
    "fault_plan",
    "fire_cell_faults",
    "install_fault_plan",
    "parse_fault_plan",
    "truncate_checkpoint_file",
]
