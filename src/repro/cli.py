"""Command-line interface for the OptRR reproduction library.

Usage examples::

    optrr list
    optrr run fig4a --generations 200 --seed 1
    optrr campaign 'fig4*' thm2 --seeds 8 --jobs 4 --cache-dir .campaign-cache
    optrr optimize --distribution gamma --categories 10 --records 10000 --delta 0.75
    optrr optimize --distribution adult:education --output front.json
    optrr optimize --distribution normal --generations 20000 \
        --checkpoint run.ck.json --deadline 3600
    optrr optimize --resume run.ck.json --generations 40000
    optrr pipeline --data adult:education --front front.json --miners tree,rules \
        --seeds 0-4 --jobs 2 --output aggregate.json
    optrr disguise codes.txt --matrix warner:0.8 --categories 5 \
        --chunk-size 10000 --estimator iterative --report report.json
    optrr compare-schemes --distribution normal --categories 10
    optrr search-space --categories 10 --grid 100
    optrr lint --list-rules

Exit codes: ``0`` success, ``1`` a paper claim diverged (``run``), ``2`` a
usage error (unknown experiment, conflicting ``--categories``, rejected
override, unreadable ``--front`` document, ...) reported on stderr.  The
full reference for every subcommand lives in ``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.aggregate import format_aggregate_table
from repro.backend import (
    known_backend_names,
    resolve_backend_name,
    set_active_backend,
)
from repro.analysis.front import ParetoFront
from repro.analysis.plot import ascii_scatter
from repro.analysis.report import format_front_table, format_pipeline_table
from repro.core.config import DEFAULT_LOW_FIDELITY_FRACTION, OptRRConfig
from repro.core.driver import DEFAULT_CHECKPOINT_EVERY, checkpoint_scope
from repro.core.optimizer import OptRROptimizer
from repro.core.search_space import log10_rr_matrix_combinations
from repro.data.distribution import CategoricalDistribution
from repro.data.workload import resolve_workload_prior
from repro.exceptions import (
    BackendError,
    DataError,
    EstimationError,
    ExperimentError,
    GridCellError,
    OptimizationError,
    ValidationError,
)
from repro.experiments.campaign import (
    DEFAULT_CAMPAIGN_RETRIES,
    CampaignCache,
    plan_campaign,
    run_campaign,
)
from repro.experiments.registry import available_experiments, get_experiment
from repro.experiments.runner import run_experiment
from repro.pipeline import (
    PipelineCache,
    parse_seed_argument,
    plan_pipeline,
    run_pipeline,
    schemes_from_front,
)
from repro.rr.family import scheme_family, family_names
from repro.metrics.evaluation import MatrixEvaluator

#: Default domain size for the synthetic priors when --categories is omitted.
DEFAULT_CATEGORIES = 10


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="array backend for the (B, n, n) hot kernels (default: "
             "$REPRO_BACKEND, else numpy); see `docs/cli.md`",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="optrr",
        description="OptRR: optimizing randomized response schemes (ICDE 2008 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run a paper experiment")
    run_parser.add_argument("experiment", help="experiment id (see `optrr list`)")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--generations", type=int, default=None)
    run_parser.add_argument("--population", type=int, default=None)
    run_parser.add_argument("--plot", action="store_true", help="render an ASCII front plot")
    run_parser.add_argument(
        "--checkpoint-dir", default=None,
        help="write per-optimizer-run checkpoints into this directory and "
             "auto-resume from any checkpoints already there",
    )
    run_parser.add_argument(
        "--resume", default=None, metavar="DIR",
        help="alias for --checkpoint-dir: resume the experiment's optimizer "
             "runs from the partial checkpoints in DIR",
    )
    run_parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint cadence in generations (default 50; needs "
             "--checkpoint-dir or --resume)",
    )
    run_parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget shared by the experiment's optimizer runs",
    )
    _add_backend_argument(run_parser)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="run a multi-seed campaign over a grid of experiments",
    )
    campaign_parser.add_argument(
        "experiments", nargs="+",
        help="experiment ids or globs (e.g. fig4a 'fig5*')",
    )
    campaign_parser.add_argument(
        "--seeds", type=int, default=4, help="number of seeds per experiment (0..N-1)"
    )
    campaign_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    campaign_parser.add_argument(
        "--cache-dir", default=None,
        help="content-addressed result cache directory (omit to disable caching)",
    )
    campaign_parser.add_argument("--generations", type=int, default=None)
    campaign_parser.add_argument("--population", type=int, default=None)
    campaign_parser.add_argument(
        "--output", default=None, help="write the aggregate JSON document to this path"
    )
    _add_resilience_arguments(campaign_parser, keep_going_default=True)
    _add_backend_argument(campaign_parser)

    optimize_parser = subparsers.add_parser("optimize", help="optimize RR matrices for a workload")
    optimize_parser.add_argument("--distribution", default="normal",
                                 help="normal, gamma, uniform, zipf, geometric, or adult:<attribute>")
    optimize_parser.add_argument(
        "--categories", type=int, default=None,
        help=f"domain size for synthetic priors (default {DEFAULT_CATEGORIES}); "
             "derived from the data for adult:<attribute>",
    )
    optimize_parser.add_argument("--records", type=int, default=10_000)
    optimize_parser.add_argument("--delta", type=float, default=None)
    optimize_parser.add_argument(
        "--generations", type=int, default=None,
        help="generation budget (default 200; with --resume, extends the "
             "checkpointed run's budget)",
    )
    optimize_parser.add_argument("--population", type=int, default=40)
    optimize_parser.add_argument("--seed", type=int, default=0)
    optimize_parser.add_argument("--plot", action="store_true")
    optimize_parser.add_argument(
        "--output", default=None,
        help="write the optimization_result JSON document (front + matrices) "
             "to this path; feed it to `optrr pipeline --front`",
    )
    optimize_parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write resumable checkpoint documents to this file",
    )
    optimize_parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint cadence in generations (default 50; needs "
             "--checkpoint or --resume)",
    )
    optimize_parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume from a checkpoint file; the workload (distribution, "
             "records, delta, population) comes from the checkpoint and the "
             "corresponding flags are ignored",
    )
    optimize_parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for this invocation's work, combined with "
             "the generation budget (time spent before a --resume does not "
             "count against it)",
    )
    optimize_parser.add_argument(
        "--fidelity", action="store_true",
        help="enable multi-fidelity scheduling: offspring are evaluated at a "
             "reduced fidelity first and only the most promising fraction is "
             f"promoted to a full evaluation (default low fraction "
             f"{DEFAULT_LOW_FIDELITY_FRACTION})",
    )
    optimize_parser.add_argument(
        "--low-fidelity-fraction", type=float, default=None, metavar="F",
        help="record fraction for low-fidelity evaluations, in (0, 1] "
             "(implies --fidelity; 1.0 disables fidelity scheduling)",
    )
    _add_backend_argument(optimize_parser)

    pipeline_parser = subparsers.add_parser(
        "pipeline",
        help="disguise -> reconstruct -> mine -> score a set of RR schemes",
    )
    pipeline_parser.add_argument(
        "--data", required=True,
        help="workload data: adult:<attribute> or a synthetic family "
             "(normal, gamma, uniform, zipf, geometric)",
    )
    pipeline_parser.add_argument(
        "--schemes", default=None,
        help="comma list of family:parameter schemes (e.g. warner:0.8,up:0.9,frapp:5)",
    )
    pipeline_parser.add_argument(
        "--front", default=None,
        help="optimization_result JSON document produced by `optrr optimize "
             "--output`; every front point becomes a scheme",
    )
    pipeline_parser.add_argument(
        "--front-schemes", type=int, default=None,
        help="thin the front to at most this many evenly-spaced points",
    )
    pipeline_parser.add_argument(
        "--miners", default="tree,rules,distribution",
        help="comma list of miners (tree, rules, distribution)",
    )
    pipeline_parser.add_argument(
        "--miner-param", action="append", default=[], metavar="MINER:KEY=VALUE",
        help="override a miner parameter (repeatable), e.g. rules:min_support=0.1",
    )
    pipeline_parser.add_argument(
        "--seeds", default="4",
        help="seeds as a count (5 -> 0..4), an inclusive range (0-4) or a "
             "comma list (0,3,7)",
    )
    pipeline_parser.add_argument("--records", type=int, default=20_000)
    pipeline_parser.add_argument(
        "--categories", type=int, default=None,
        help=f"domain size for synthetic priors (default {DEFAULT_CATEGORIES}); "
             "derived from the data for adult:<attribute>",
    )
    pipeline_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    pipeline_parser.add_argument(
        "--cache-dir", default=None,
        help="content-addressed cell cache directory (omit to disable caching)",
    )
    pipeline_parser.add_argument(
        "--output", default=None,
        help="write the pipeline_aggregate JSON document to this path",
    )
    pipeline_parser.add_argument(
        "--result", default=None,
        help="write the full per-cell pipeline_result JSON document to this path",
    )
    _add_resilience_arguments(pipeline_parser, keep_going_default=False)
    _add_backend_argument(pipeline_parser)

    disguise_parser = subparsers.add_parser(
        "disguise",
        help="stream integer codes through an RR disguise with online "
             "reconstruction (bounded-memory chunks)",
    )
    disguise_parser.add_argument(
        "input", nargs="?", default="-",
        help="file of integer codes (whitespace-separated); '-' or omitted "
             "reads stdin",
    )
    disguise_parser.add_argument(
        "--matrix", default=None, metavar="SCHEME|PATH",
        help="family:parameter scheme (e.g. warner:0.8; needs --categories) "
             "or a path to an rr_matrix JSON document",
    )
    disguise_parser.add_argument(
        "--front", default=None, metavar="PATH",
        help="optimization_result JSON produced by `optrr optimize --output`; "
             "pick a point with --front-index",
    )
    disguise_parser.add_argument(
        "--front-index", type=int, default=0, metavar="K",
        help="front point to disguise with, in ascending-privacy order "
             "(default 0)",
    )
    disguise_parser.add_argument(
        "--categories", type=int, default=None,
        help="domain size (required with a family:parameter --matrix; "
             "derived from the matrix otherwise)",
    )
    disguise_parser.add_argument(
        "--chunk-size", type=int, default=65_536, metavar="N",
        help="records disguised per chunk; bounds peak memory (default 65536)",
    )
    disguise_parser.add_argument(
        "--estimator", choices=("inversion", "iterative"), default="inversion",
        help="reconstruction method for the report (default inversion)",
    )
    disguise_parser.add_argument("--seed", type=int, default=0)
    disguise_parser.add_argument(
        "--output", default=None,
        help="write disguised codes (one per line) to this path instead of "
             "stdout",
    )
    disguise_parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the JSON disguise_report document (counts, estimate, "
             "per-chunk diagnostics) to this path",
    )
    _add_backend_argument(disguise_parser)

    compare_parser = subparsers.add_parser(
        "compare-schemes", help="compare the classic scheme families on a workload"
    )
    compare_parser.add_argument("--distribution", default="normal")
    compare_parser.add_argument(
        "--categories", type=int, default=None,
        help=f"domain size for synthetic priors (default {DEFAULT_CATEGORIES}); "
             "derived from the data for adult:<attribute>",
    )
    compare_parser.add_argument("--records", type=int, default=10_000)
    compare_parser.add_argument("--delta", type=float, default=None)

    space_parser = subparsers.add_parser("search-space", help="print the Fact 1 search-space size")
    space_parser.add_argument("--categories", type=int, default=DEFAULT_CATEGORIES)
    space_parser.add_argument("--grid", type=int, default=100)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the repro-lint AST invariant analyzer (rules in docs/invariants.md)",
    )
    from repro.lintkit.runner import configure_parser

    configure_parser(lint_parser)

    return parser


def _add_resilience_arguments(
    parser: argparse.ArgumentParser, *, keep_going_default: bool
) -> None:
    """The shared ``--retries/--cell-timeout/--keep-going`` flag group.

    Semantics are documented in ``docs/robustness.md``; the ``keep_going``
    default differs per command (on for campaigns, off for pipelines).
    """
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts granted to each failing grid cell, with capped "
             "exponential backoff between attempts (default: 1 for "
             "campaign, 0 for pipeline)",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock limit; a cell exceeding it has its worker "
             "killed and replaced (counts as a failed attempt)",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--keep-going", dest="keep_going", action="store_true",
        default=keep_going_default,
        help="quarantine cells that exhaust their attempts and run the rest "
             "of the grid to completion (exit status 1 reports the "
             f"quarantined cells){' [default]' if keep_going_default else ''}",
    )
    group.add_argument(
        "--no-keep-going", dest="keep_going", action="store_false",
        help="abort the whole grid on the first cell that exhausts its "
             f"attempts{'' if keep_going_default else ' [default]'}",
    )


def _report_quarantined_cells(manifest: dict | None, label: str) -> None:
    """Describe every quarantined cell of a failure manifest on stderr."""
    cells = [
        cell for cell in (manifest or {}).get("cells", []) if cell.get("quarantined")
    ]
    print(
        f"optrr: error: {len(cells)} {label} cell(s) quarantined after "
        f"exhausting their attempts:",
        file=sys.stderr,
    )
    for cell in cells:
        coordinates = ", ".join(
            f"{key}={cell[key]}"
            for key in cell
            if key not in ("index", "quarantined", "attempts")
        )
        last = cell["attempts"][-1] if cell.get("attempts") else {}
        detail = last.get("error") or last.get("status") or "no result"
        print(
            f"optrr:   cell {cell['index']} ({coordinates}): {detail}",
            file=sys.stderr,
        )


def _validate_resilience_arguments(args: argparse.Namespace) -> str | None:
    """Shared validation of the resilience flag group (None when valid)."""
    if args.retries is not None and args.retries < 0:
        return "--retries must be >= 0"
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        return "--cell-timeout must be positive"
    return None


def _fail(message: str) -> int:
    """Report a usage error on stderr and return the usage-error exit code."""
    print(f"optrr: error: {message}", file=sys.stderr)
    return 2


def _activate_backend(name: str | None) -> str | None:
    """Activate the array backend selected by ``--backend``/``REPRO_BACKEND``.

    Returns an error message (for :func:`_fail`) when the resolved backend is
    unknown or unavailable, ``None`` on success.  The known-backend list is
    appended to unknown-name errors so the user can see what to pick from.
    """
    resolved = resolve_backend_name(name)
    try:
        set_active_backend(resolved)
    except BackendError as exc:
        return f"{exc} (known backends: {', '.join(known_backend_names())})"
    return None


def _resolve_distribution(name: str, n_categories: int | None) -> CategoricalDistribution:
    """Resolve a --distribution argument into a prior.

    Delegates to the shared resolver (:func:`repro.data.workload.
    resolve_workload_prior`): for ``adult:<attribute>`` the category count is
    a property of the data, and an explicit ``--categories`` that contradicts
    it raises :class:`DataError` instead of being silently ignored.
    """
    return resolve_workload_prior(name, n_categories, categories_label="--categories")


def _command_list() -> int:
    print("Available experiments:")
    for experiment_id in available_experiments():
        spec = get_experiment(experiment_id)
        print(f"  {experiment_id:8s}  {spec.paper_artifact:12s}  {spec.description}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    backend_error = _activate_backend(args.backend)
    if backend_error is not None:
        return _fail(backend_error)
    overrides = {}
    if args.generations is not None:
        overrides["n_generations"] = args.generations
    if args.population is not None:
        overrides["population_size"] = args.population
    checkpoint_dir = args.checkpoint_dir or args.resume
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        return _fail("--checkpoint-every must be at least 1")
    if args.checkpoint_every is not None and checkpoint_dir is None:
        return _fail("--checkpoint-every needs --checkpoint-dir or --resume")
    if args.deadline is not None and args.deadline <= 0:
        return _fail("--deadline must be positive")
    try:
        if checkpoint_dir is not None or args.deadline is not None:
            # Every optimizer run inside the experiment claims a checkpoint
            # slot in the scope (auto-resuming from a previous partial run)
            # and shares the wall-clock deadline.
            with checkpoint_scope(
                checkpoint_dir,
                token=f"{args.experiment}-seed{args.seed}",
                every=args.checkpoint_every or DEFAULT_CHECKPOINT_EVERY,
                deadline=args.deadline,
            ) as scope:
                result = run_experiment(args.experiment, seed=args.seed, **overrides)
            scope.clear()
        else:
            result = run_experiment(args.experiment, seed=args.seed, **overrides)
    except ExperimentError as exc:
        return _fail(str(exc))
    except OSError as exc:
        return _fail(f"checkpoint i/o failed: {exc}")
    print(result.summary_text())
    if args.plot and result.fronts:
        fronts = [front for front in result.fronts.values() if not front.is_empty]
        if fronts:
            print(ascii_scatter(fronts))
    return 0 if result.reproduced else 1


def _command_campaign(args: argparse.Namespace) -> int:
    backend_error = _activate_backend(args.backend)
    if backend_error is not None:
        return _fail(backend_error)
    if args.seeds < 1:
        return _fail("--seeds must be at least 1")
    if args.jobs < 1:
        return _fail("--jobs must be at least 1")
    resilience_error = _validate_resilience_arguments(args)
    if resilience_error is not None:
        return _fail(resilience_error)
    overrides = {}
    if args.generations is not None:
        overrides["n_generations"] = args.generations
    if args.population is not None:
        overrides["population_size"] = args.population
    try:
        spec = plan_campaign(args.experiments, range(args.seeds), overrides or None)
    except ExperimentError as exc:
        return _fail(str(exc))
    # The plan is valid; now fail on bad destinations, still before the
    # (potentially long) grid runs.
    output_path = Path(args.output) if args.output is not None else None
    if output_path is not None:
        if not output_path.parent.is_dir():
            return _fail(f"--output directory {str(output_path.parent)!r} does not exist")
        if output_path.is_dir():
            return _fail(f"--output {args.output!r} is an existing directory")
    if args.cache_dir is not None:
        try:
            CampaignCache(args.cache_dir)
        except OSError as exc:
            return _fail(f"--cache-dir {args.cache_dir!r} is unusable: {exc}")
    try:
        result = run_campaign(
            spec,
            n_jobs=args.jobs,
            cache_dir=args.cache_dir,
            retries=(
                args.retries if args.retries is not None else DEFAULT_CAMPAIGN_RETRIES
            ),
            cell_timeout=args.cell_timeout,
            keep_going=args.keep_going,
        )
    except (ExperimentError, GridCellError) as exc:
        # With --no-keep-going a poison cell aborts the grid; surface it as
        # the documented exit-2 error line, not a traceback.
        return _fail(str(exc))
    print(
        f"campaign: {len(spec.experiments)} experiment(s) x {len(spec.seeds)} seed(s) "
        f"= {len(result.records)} run(s), {result.n_cache_hits} from cache, "
        f"{args.jobs} worker(s)"
    )
    print(format_aggregate_table(result.aggregates))
    if output_path is not None:
        try:
            output_path.write_text(result.aggregate_json() + "\n", encoding="utf-8")
        except OSError as exc:
            return _fail(f"could not write --output: {exc}")
        print(f"aggregate written to {args.output}")
    if result.failures:
        # Partial success: aggregates over the completed cells were printed
        # (and written) above; the quarantined cells make the run non-zero.
        _report_quarantined_cells(result.failure_manifest, "campaign")
        return 1
    return 0


def _command_optimize(args: argparse.Namespace) -> int:
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        return _fail("--checkpoint-every must be at least 1")
    if args.checkpoint_every is not None and args.checkpoint is None and args.resume is None:
        return _fail("--checkpoint-every needs --checkpoint or --resume")
    if args.deadline is not None and args.deadline <= 0:
        return _fail("--deadline must be positive")
    if args.low_fidelity_fraction is not None and not (
        0.0 < args.low_fidelity_fraction <= 1.0
    ):
        return _fail("--low-fidelity-fraction must lie in (0, 1]")
    output_path = Path(args.output) if args.output is not None else None
    if output_path is not None and not output_path.parent.is_dir():
        return _fail(f"--output directory {str(output_path.parent)!r} does not exist")
    try:
        if args.resume is not None:
            result = _resumed_optimization(args)
        else:
            result = _fresh_optimization(args)
    except (BackendError, DataError, ValidationError, OptimizationError) as exc:
        return _fail(str(exc))
    except OSError as exc:
        return _fail(f"checkpoint i/o failed: {exc}")
    front = ParetoFront.from_result("optrr", result)
    print(format_front_table(front, max_rows=30))
    if args.plot:
        print(ascii_scatter([front]))
    low, high = result.privacy_range
    print(f"privacy range: [{low:.4f}, {high:.4f}]  "
          f"({len(result)} Pareto points, {result.n_evaluations} evaluations)")
    if output_path is not None:
        from repro.io import save_result

        try:
            save_result(result, output_path)
        except OSError as exc:
            return _fail(f"could not write --output: {exc}")
        print(f"front written to {args.output}")
    return 0


def _activate_backend_or_raise(name: str | None) -> None:
    """Like :func:`_activate_backend`, raising the enriched error instead."""
    error = _activate_backend(name)
    if error is not None:
        raise BackendError(error)


def _fresh_optimization(args: argparse.Namespace):
    """Run `optrr optimize` from scratch (optionally writing checkpoints)."""
    _activate_backend_or_raise(args.backend)
    prior = _resolve_distribution(args.distribution, args.categories)
    if args.low_fidelity_fraction is not None:
        low_fidelity_fraction = args.low_fidelity_fraction
    elif args.fidelity:
        low_fidelity_fraction = DEFAULT_LOW_FIDELITY_FRACTION
    else:
        low_fidelity_fraction = 1.0
    config = OptRRConfig(
        population_size=args.population,
        archive_size=args.population,
        n_generations=args.generations if args.generations is not None else 200,
        delta=args.delta,
        low_fidelity_fraction=low_fidelity_fraction,
        seed=args.seed,
    )
    return OptRROptimizer(prior, args.records, config).run(
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        deadline=args.deadline,
    )


def _resumed_optimization(args: argparse.Namespace):
    """Resume `optrr optimize` from a checkpoint file.

    The workload comes from the checkpoint itself; ``--generations`` (when
    given) replaces the generation budget, which reopens a run whose
    checkpoint was written after termination.  Further checkpoints keep
    going to the same file unless ``--checkpoint`` redirects them.
    """
    from repro.io import load_checkpoint_with_fallback

    try:
        document, loaded_from = load_checkpoint_with_fallback(args.resume)
    except (OSError, ValueError) as exc:
        raise ValidationError(f"cannot read --resume {args.resume!r}: {exc}") from exc
    if str(loaded_from) != str(args.resume):
        print(
            f"optrr: warning: newest checkpoint was corrupt; resuming from "
            f"rotation sibling {loaded_from}",
            file=sys.stderr,
        )
    if document.get("algorithm") != "optrr":
        raise ValidationError(
            f"--resume expects an optrr checkpoint, got algorithm "
            f"{document.get('algorithm')!r}"
        )
    # Backend precedence on resume: an explicit --backend wins, then the
    # backend the checkpointed run used (so kill/resume stays consistent
    # without re-passing the flag), then the env var / default.
    _activate_backend_or_raise(args.backend or document.get("backend") or None)
    optimizer = OptRROptimizer.from_checkpoint(document)
    if args.generations is not None:
        optimizer = OptRROptimizer(
            optimizer.prior,
            optimizer.n_records,
            optimizer.config.with_updates(n_generations=args.generations),
        )
    driver = optimizer.driver(
        checkpoint_path=args.checkpoint or args.resume,
        checkpoint_every=args.checkpoint_every,
        deadline=args.deadline,
    )
    # Reopen a post-termination checkpoint only while the (possibly
    # --generations-extended) generation budget is unexhausted: a run whose
    # --deadline fired first continues its remaining generations, while a
    # run that completed its budget replays its result — never overshooting
    # by an extra generation.
    reopen = (
        bool(document.get("stopped"))
        and int(document.get("generation", 0)) + 1 < optimizer.config.n_generations
    )
    try:
        driver.restore(document, reopen=reopen)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"unusable checkpoint {args.resume!r}: {exc}") from exc
    return optimizer.run_driver(driver)


def _parse_miner_param_arguments(arguments: Sequence[str]) -> dict[str, dict[str, str]]:
    """Parse repeated ``--miner-param miner:key=value`` overrides."""
    options: dict[str, dict[str, str]] = {}
    for argument in arguments:
        head, separator, value = argument.partition("=")
        miner, colon, key = head.partition(":")
        if not separator or not colon or not miner or not key:
            raise ValidationError(
                f"--miner-param {argument!r} must have the form miner:key=value"
            )
        options.setdefault(miner, {})[key] = value
    return options


def _command_pipeline(args: argparse.Namespace) -> int:
    backend_error = _activate_backend(args.backend)
    if backend_error is not None:
        return _fail(backend_error)
    if args.jobs < 1:
        return _fail("--jobs must be at least 1")
    resilience_error = _validate_resilience_arguments(args)
    if resilience_error is not None:
        return _fail(resilience_error)
    if args.schemes is None and args.front is None:
        return _fail("give --schemes, --front, or both")
    if args.front is None and args.front_schemes is not None:
        return _fail("--front-schemes only applies when --front is given")
    scheme_arguments: list = []
    if args.schemes is not None:
        scheme_arguments.extend(
            part.strip() for part in args.schemes.split(",") if part.strip()
        )
    if args.front is not None:
        from repro.io import load_result

        try:
            front_result = load_result(args.front)
        except (OSError, ValueError) as exc:
            return _fail(f"cannot read --front {args.front!r}: {exc}")
        try:
            scheme_arguments.extend(
                schemes_from_front(front_result, max_schemes=args.front_schemes)
            )
        except ValidationError as exc:
            return _fail(str(exc))
    miners = [part.strip() for part in args.miners.split(",") if part.strip()]
    try:
        seeds = parse_seed_argument(args.seeds)
        miner_options = _parse_miner_param_arguments(args.miner_param)
        spec = plan_pipeline(
            args.data,
            schemes=scheme_arguments,
            miners=miners,
            seeds=seeds,
            n_records=args.records,
            n_categories=args.categories,
            miner_options=miner_options,
        )
    except (DataError, ValidationError, EstimationError) as exc:
        return _fail(str(exc))
    # The plan is valid; now fail on bad destinations, still before the
    # (potentially long) grid runs.
    destinations = {}
    for option in ("output", "result"):
        raw = getattr(args, option)
        if raw is None:
            continue
        path = Path(raw)
        if not path.parent.is_dir():
            return _fail(f"--{option} directory {str(path.parent)!r} does not exist")
        if path.is_dir():
            return _fail(f"--{option} {raw!r} is an existing directory")
        destinations[option] = path
    if args.cache_dir is not None:
        try:
            PipelineCache(args.cache_dir)
        except OSError as exc:
            return _fail(f"--cache-dir {args.cache_dir!r} is unusable: {exc}")
    try:
        result = run_pipeline(
            spec,
            n_jobs=args.jobs,
            cache_dir=args.cache_dir,
            retries=(args.retries if args.retries is not None else 0),
            cell_timeout=args.cell_timeout,
            keep_going=args.keep_going,
        )
    except (ValidationError, DataError, EstimationError, GridCellError) as exc:
        # Cell-time failures (e.g. an estimation method the miner only
        # validates when it runs) surface as the documented exit-2 error
        # line, not a traceback — also when re-raised out of a worker pool,
        # and also when the cell died without an exception to re-raise (a
        # crash or timeout under --no-keep-going).
        return _fail(str(exc))
    print(
        f"pipeline: {len(spec.schemes)} scheme(s) x {len(spec.seeds)} seed(s) x "
        f"{len(spec.miners)} miner(s) = {len(result.cells)} cell(s), "
        f"{result.n_cache_hits} from cache, {args.jobs} worker(s)"
    )
    aggregate_document = result.aggregate_document()
    print(format_pipeline_table(aggregate_document))
    from repro.io import dump_canonical_json

    try:
        if "output" in destinations:
            destinations["output"].write_text(
                dump_canonical_json(aggregate_document) + "\n", encoding="utf-8"
            )
            print(f"aggregate written to {args.output}")
        if "result" in destinations:
            destinations["result"].write_text(
                dump_canonical_json(result.result_document()) + "\n", encoding="utf-8"
            )
            print(f"result table written to {args.result}")
    except OSError as exc:
        return _fail(f"could not write output document: {exc}")
    if result.failures:
        # Partial success: completed cells were reported (and written)
        # above; the quarantined cells make the run non-zero.
        _report_quarantined_cells(result.failure_manifest, "pipeline")
        return 1
    return 0


def _resolve_disguise_matrix(args: argparse.Namespace):
    """Resolve the ``optrr disguise`` matrix source into ``(name, matrix)``.

    Exactly one of ``--matrix`` (scheme string or rr_matrix file) and
    ``--front`` must be given; an explicit ``--categories`` that contradicts
    the resolved matrix is rejected instead of silently ignored.
    """
    from repro.io import load_matrix, load_result
    from repro.pipeline.spec import resolve_scheme_argument

    if (args.matrix is None) == (args.front is None):
        raise ValidationError("give exactly one of --matrix or --front")
    if args.matrix is not None:
        path = Path(args.matrix)
        if path.exists():
            try:
                matrix = load_matrix(path)
            except (OSError, ValueError) as exc:
                raise ValidationError(
                    f"cannot read --matrix {args.matrix!r}: {exc}"
                ) from exc
            name = f"file:{args.matrix}"
        else:
            if args.categories is None:
                raise ValidationError(
                    f"--matrix {args.matrix!r} is not a file; a "
                    f"family:parameter scheme needs --categories"
                )
            scheme = resolve_scheme_argument(args.matrix, args.categories)
            name, matrix = scheme.name, scheme.matrix
    else:
        try:
            result = load_result(args.front)
        except (OSError, ValueError) as exc:
            raise ValidationError(
                f"cannot read --front {args.front!r}: {exc}"
            ) from exc
        schemes = schemes_from_front(result)
        if not 0 <= args.front_index < len(schemes):
            raise ValidationError(
                f"--front-index {args.front_index} out of range; the front "
                f"has {len(schemes)} point(s)"
            )
        scheme = schemes[args.front_index]
        name, matrix = scheme.name, scheme.matrix
    if args.categories is not None and args.categories != matrix.n_categories:
        raise ValidationError(
            f"--categories {args.categories} contradicts the resolved "
            f"{matrix.n_categories}x{matrix.n_categories} matrix"
        )
    return name, matrix


def _iter_code_chunks(stream, chunk_size: int):
    """Parse whitespace-separated integer codes from a text stream in
    ``chunk_size`` batches (bounded memory: one chunk buffered at a time)."""
    import numpy as np

    buffer: list[int] = []
    for line in stream:
        for token in line.split():
            try:
                buffer.append(int(token))
            except ValueError as exc:
                raise DataError(f"input code {token!r} is not an integer") from exc
            if len(buffer) == chunk_size:
                yield np.asarray(buffer, dtype=np.int64)
                buffer = []
    if buffer:
        yield np.asarray(buffer, dtype=np.int64)


def _command_disguise(args: argparse.Namespace) -> int:
    from repro.io import dump_canonical_json
    from repro.pipeline.spec import matrix_digest
    from repro.rr.streaming import OnlineEstimator, StreamingDisguiser

    backend_error = _activate_backend(args.backend)
    if backend_error is not None:
        return _fail(backend_error)
    if args.chunk_size < 1:
        return _fail("--chunk-size must be at least 1")
    try:
        name, matrix = _resolve_disguise_matrix(args)
    except (ValidationError, DataError, EstimationError) as exc:
        return _fail(str(exc))
    report_path = Path(args.report) if args.report is not None else None
    output_path = Path(args.output) if args.output is not None else None
    for option, path in (("report", report_path), ("output", output_path)):
        if path is not None and not path.parent.is_dir():
            return _fail(f"--{option} directory {str(path.parent)!r} does not exist")
    disguiser = StreamingDisguiser(matrix, seed=args.seed)
    estimator = OnlineEstimator(matrix, method=args.estimator)
    estimate = None
    # Codes go to stdout by default, so the human summary moves to stderr
    # there — `optrr disguise < in > out` stays a clean code stream.
    summary_stream = sys.stdout if output_path is not None else sys.stderr
    try:
        if args.input == "-":
            input_stream = sys.stdin
            close_input = False
        else:
            input_stream = open(args.input, "r", encoding="utf-8")
            close_input = True
    except OSError as exc:
        return _fail(f"cannot read input {args.input!r}: {exc}")
    try:
        output_stream = (
            open(output_path, "w", encoding="utf-8")
            if output_path is not None
            else sys.stdout
        )
    except OSError as exc:
        if close_input:
            input_stream.close()
        return _fail(f"could not open --output: {exc}")
    try:
        for chunk in _iter_code_chunks(input_stream, args.chunk_size):
            disguised = disguiser.disguise_chunk(chunk)
            estimate = estimator.update(disguised)
            output_stream.write("\n".join(map(str, disguised.tolist())) + "\n")
    except (DataError, ValidationError, EstimationError) as exc:
        return _fail(str(exc))
    except OSError as exc:
        return _fail(f"i/o failed: {exc}")
    finally:
        if close_input:
            input_stream.close()
        if output_path is not None:
            output_stream.close()
    if estimate is None:
        return _fail("no input codes")
    n_chunks = len(estimator.diagnostics)
    print(
        f"disguise: {disguiser.records_seen} record(s) in {n_chunks} chunk(s), "
        f"matrix {name} ({matrix.n_categories} categories), seed {args.seed}",
        file=summary_stream,
    )
    probabilities = " ".join(f"{value:.4f}" for value in estimate.probabilities)
    convergence = (
        f", {estimate.n_iterations} iteration(s), "
        f"converged={estimate.converged}"
        if args.estimator == "iterative"
        else ""
    )
    print(
        f"estimate ({args.estimator}): [{probabilities}]{convergence}",
        file=summary_stream,
    )
    if report_path is not None:
        document = {
            "type": "disguise_report",
            "format_version": 1,
            "matrix": {
                "name": name,
                "n_categories": matrix.n_categories,
                "digest": matrix_digest(matrix),
            },
            "seed": int(args.seed),
            "chunk_size": int(args.chunk_size),
            "estimator": args.estimator,
            "n_records": disguiser.records_seen,
            "disguised_counts": [int(count) for count in estimator.counts],
            "estimate": {
                "probabilities": [float(v) for v in estimate.probabilities],
                "raw_probabilities": [float(v) for v in estimate.raw_probabilities],
                "n_iterations": int(estimate.n_iterations),
                "converged": bool(estimate.converged),
            },
            "chunks": list(estimator.diagnostics),
        }
        try:
            report_path.write_text(
                dump_canonical_json(document) + "\n", encoding="utf-8"
            )
        except OSError as exc:
            return _fail(f"could not write --report: {exc}")
        print(f"report written to {args.report}", file=summary_stream)
    return 0


def _command_compare_schemes(args: argparse.Namespace) -> int:
    try:
        prior = _resolve_distribution(args.distribution, args.categories)
    except DataError as exc:
        return _fail(str(exc))
    evaluator = MatrixEvaluator(prior, args.records, args.delta)
    for name in family_names():
        family = scheme_family(name, prior.n_categories)
        front = ParetoFront.from_matrices(name, family.matrices(201), evaluator)
        print(format_front_table(front, max_rows=10))
        print()
    return 0


def _command_search_space(args: argparse.Namespace) -> int:
    log10_count = log10_rr_matrix_combinations(args.categories, args.grid)
    print(
        f"discretised RR matrices for n={args.categories}, d={args.grid}: "
        f"about 10^{log10_count:.2f}"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "campaign":
        return _command_campaign(args)
    if args.command == "optimize":
        return _command_optimize(args)
    if args.command == "pipeline":
        return _command_pipeline(args)
    if args.command == "disguise":
        return _command_disguise(args)
    if args.command == "compare-schemes":
        return _command_compare_schemes(args)
    if args.command == "search-space":
        return _command_search_space(args)
    if args.command == "lint":
        from repro.lintkit.runner import run_from_args

        return run_from_args(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
