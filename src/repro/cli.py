"""Command-line interface for the OptRR reproduction library.

Usage examples::

    optrr list
    optrr run fig4a --generations 200 --seed 1
    optrr optimize --distribution gamma --categories 10 --records 10000 --delta 0.75
    optrr compare-schemes --distribution normal --categories 10
    optrr search-space --categories 10 --grid 100
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.front import ParetoFront
from repro.analysis.plot import ascii_scatter
from repro.analysis.report import format_front_table
from repro.core.config import OptRRConfig
from repro.core.optimizer import OptRROptimizer
from repro.core.search_space import log10_rr_matrix_combinations
from repro.data.adult import adult_attribute_distribution, adult_attribute_names
from repro.data.synthetic import make_distribution
from repro.experiments.registry import available_experiments, get_experiment
from repro.experiments.runner import run_experiment
from repro.rr.family import scheme_family, family_names
from repro.metrics.evaluation import MatrixEvaluator


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="optrr",
        description="OptRR: optimizing randomized response schemes (ICDE 2008 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run a paper experiment")
    run_parser.add_argument("experiment", help="experiment id (see `optrr list`)")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--generations", type=int, default=None)
    run_parser.add_argument("--population", type=int, default=None)
    run_parser.add_argument("--plot", action="store_true", help="render an ASCII front plot")

    optimize_parser = subparsers.add_parser("optimize", help="optimize RR matrices for a workload")
    optimize_parser.add_argument("--distribution", default="normal",
                                 help="normal, gamma, uniform, zipf, geometric, or adult:<attribute>")
    optimize_parser.add_argument("--categories", type=int, default=10)
    optimize_parser.add_argument("--records", type=int, default=10_000)
    optimize_parser.add_argument("--delta", type=float, default=None)
    optimize_parser.add_argument("--generations", type=int, default=200)
    optimize_parser.add_argument("--population", type=int, default=40)
    optimize_parser.add_argument("--seed", type=int, default=0)
    optimize_parser.add_argument("--plot", action="store_true")

    compare_parser = subparsers.add_parser(
        "compare-schemes", help="compare the classic scheme families on a workload"
    )
    compare_parser.add_argument("--distribution", default="normal")
    compare_parser.add_argument("--categories", type=int, default=10)
    compare_parser.add_argument("--records", type=int, default=10_000)
    compare_parser.add_argument("--delta", type=float, default=None)

    space_parser = subparsers.add_parser("search-space", help="print the Fact 1 search-space size")
    space_parser.add_argument("--categories", type=int, default=10)
    space_parser.add_argument("--grid", type=int, default=100)

    return parser


def _resolve_distribution(name: str, n_categories: int):
    if name.startswith("adult:"):
        return adult_attribute_distribution(name.split(":", 1)[1])
    if name == "adult":
        return adult_attribute_distribution(adult_attribute_names()[0])
    return make_distribution(name, n_categories)


def _command_list() -> int:
    print("Available experiments:")
    for experiment_id in available_experiments():
        spec = get_experiment(experiment_id)
        print(f"  {experiment_id:8s}  {spec.paper_artifact:12s}  {spec.description}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    overrides = {}
    if args.generations is not None:
        overrides["n_generations"] = args.generations
    if args.population is not None:
        overrides["population_size"] = args.population
    result = run_experiment(args.experiment, seed=args.seed, **overrides)
    print(result.summary_text())
    if args.plot and result.fronts:
        fronts = [front for front in result.fronts.values() if not front.is_empty]
        if fronts:
            print(ascii_scatter(fronts))
    return 0 if result.reproduced else 1


def _command_optimize(args: argparse.Namespace) -> int:
    prior = _resolve_distribution(args.distribution, args.categories)
    config = OptRRConfig(
        population_size=args.population,
        archive_size=args.population,
        n_generations=args.generations,
        delta=args.delta,
        seed=args.seed,
    )
    result = OptRROptimizer(prior, args.records, config).run()
    front = ParetoFront.from_result("optrr", result)
    print(format_front_table(front, max_rows=30))
    if args.plot:
        print(ascii_scatter([front]))
    low, high = result.privacy_range
    print(f"privacy range: [{low:.4f}, {high:.4f}]  "
          f"({len(result)} Pareto points, {result.n_evaluations} evaluations)")
    return 0


def _command_compare_schemes(args: argparse.Namespace) -> int:
    prior = _resolve_distribution(args.distribution, args.categories)
    evaluator = MatrixEvaluator(prior, args.records, args.delta)
    for name in family_names():
        family = scheme_family(name, prior.n_categories)
        front = ParetoFront.from_matrices(name, family.matrices(201), evaluator)
        print(format_front_table(front, max_rows=10))
        print()
    return 0


def _command_search_space(args: argparse.Namespace) -> int:
    log10_count = log10_rr_matrix_combinations(args.categories, args.grid)
    print(
        f"discretised RR matrices for n={args.categories}, d={args.grid}: "
        f"about 10^{log10_count:.2f}"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "optimize":
        return _command_optimize(args)
    if args.command == "compare-schemes":
        return _command_compare_schemes(args)
    if args.command == "search-space":
        return _command_search_space(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
