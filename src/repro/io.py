"""Serialization of RR matrices and optimization results.

Optimized RR matrices are artefacts users want to store, version and ship to
the data-collection clients that apply the disguise.  This module provides a
stable JSON representation for :class:`~repro.rr.matrix.RRMatrix` and
:class:`~repro.core.result.OptimizationResult`, with round-trip guarantees
covered by the test suite.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.result import OptimizationResult, ParetoPoint
from repro.exceptions import ValidationError
from repro.rr.matrix import RRMatrix

#: Format identifier embedded in every serialized document.
FORMAT_VERSION = 1


def matrix_to_dict(matrix: RRMatrix) -> dict[str, Any]:
    """Serialize an RR matrix to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "type": "rr_matrix",
        "n_categories": matrix.n_categories,
        "probabilities": matrix.probabilities.tolist(),
    }


def matrix_from_dict(document: dict[str, Any]) -> RRMatrix:
    """Deserialize an RR matrix from :func:`matrix_to_dict` output."""
    _check_document(document, "rr_matrix")
    probabilities = np.asarray(document["probabilities"], dtype=np.float64)
    matrix = RRMatrix(probabilities)
    declared = document.get("n_categories")
    if declared is not None and int(declared) != matrix.n_categories:
        raise ValidationError(
            f"declared n_categories {declared} does not match matrix size {matrix.n_categories}"
        )
    return matrix


def result_to_dict(result: OptimizationResult, *, include_optimal_set: bool = False) -> dict[str, Any]:
    """Serialize an optimization result (front + metadata) to a dictionary."""
    def point_to_dict(point: ParetoPoint) -> dict[str, Any]:
        return {
            "privacy": point.privacy,
            "utility": point.utility,
            "max_posterior": point.max_posterior,
            "matrix": matrix_to_dict(point.matrix),
        }

    document: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "type": "optimization_result",
        "n_generations": result.n_generations,
        "n_evaluations": result.n_evaluations,
        "points": [point_to_dict(point) for point in result.points],
    }
    if include_optimal_set:
        document["optimal_set_points"] = [
            point_to_dict(point) for point in result.optimal_set_points
        ]
    return document


def result_from_dict(document: dict[str, Any]) -> OptimizationResult:
    """Deserialize an optimization result from :func:`result_to_dict` output."""
    _check_document(document, "optimization_result")

    def point_from_dict(item: dict[str, Any]) -> ParetoPoint:
        return ParetoPoint(
            matrix=matrix_from_dict(item["matrix"]),
            privacy=float(item["privacy"]),
            utility=float(item["utility"]),
            max_posterior=float(item["max_posterior"]),
        )

    return OptimizationResult(
        points=tuple(point_from_dict(item) for item in document.get("points", [])),
        optimal_set_points=tuple(
            point_from_dict(item) for item in document.get("optimal_set_points", [])
        ),
        n_generations=int(document.get("n_generations", 0)),
        n_evaluations=int(document.get("n_evaluations", 0)),
    )


def save_matrix(matrix: RRMatrix, path: str | Path) -> Path:
    """Write an RR matrix to a JSON file and return the path."""
    path = Path(path)
    path.write_text(json.dumps(matrix_to_dict(matrix), indent=2), encoding="utf-8")
    return path


def load_matrix(path: str | Path) -> RRMatrix:
    """Read an RR matrix from a JSON file written by :func:`save_matrix`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return matrix_from_dict(document)


def save_result(
    result: OptimizationResult, path: str | Path, *, include_optimal_set: bool = False
) -> Path:
    """Write an optimization result to a JSON file and return the path."""
    path = Path(path)
    document = result_to_dict(result, include_optimal_set=include_optimal_set)
    path.write_text(json.dumps(document, indent=2), encoding="utf-8")
    return path


def load_result(path: str | Path) -> OptimizationResult:
    """Read an optimization result from a JSON file written by
    :func:`save_result`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return result_from_dict(document)


def _check_document(document: dict[str, Any], expected_type: str) -> None:
    if not isinstance(document, dict):
        raise ValidationError("serialized document must be a JSON object")
    if document.get("type") != expected_type:
        raise ValidationError(
            f"expected a {expected_type!r} document, got {document.get('type')!r}"
        )
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported format version {version!r} (supported: {FORMAT_VERSION})"
        )
