"""Serialization of RR matrices, optimization results and experiment results.

Optimized RR matrices are artefacts users want to store, version and ship to
the data-collection clients that apply the disguise.  This module provides a
stable JSON representation for :class:`~repro.rr.matrix.RRMatrix`,
:class:`~repro.core.result.OptimizationResult` and
:class:`~repro.experiments.base.ExperimentResult` (the ``experiment_result``
document type backing the campaign result cache), with round-trip guarantees
covered by the test suite.

Experiment-result documents are always written with sorted keys so the same
result serializes to byte-identical JSON — the property the campaign cache
and the campaign determinism guarantee are built on.

The ``checkpoint`` document type (:func:`save_checkpoint` /
:func:`load_checkpoint`) stores a whole optimization run's resumable state;
its payload is produced and consumed by :mod:`repro.core.driver`, and its
schema is documented in ``docs/cli.md``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.result import OptimizationResult, ParetoPoint
from repro.exceptions import CheckpointCorruptionError, ValidationError
from repro.faults.injector import truncate_checkpoint_file
from repro.rr.matrix import RRMatrix
from repro.utils.logging import get_logger

logger = get_logger(__name__)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.analysis.compare import FrontComparison
    from repro.analysis.front import ParetoFront
    from repro.experiments.base import ExperimentResult
    from repro.pipeline.runner import PipelineResult

#: Format identifier embedded in every serialized document.
FORMAT_VERSION = 1


def matrix_to_dict(matrix: RRMatrix) -> dict[str, Any]:
    """Serialize an RR matrix to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "type": "rr_matrix",
        "n_categories": matrix.n_categories,
        "probabilities": matrix.probabilities.tolist(),
    }


def matrix_from_dict(document: dict[str, Any]) -> RRMatrix:
    """Deserialize an RR matrix from :func:`matrix_to_dict` output."""
    _check_document(document, "rr_matrix")
    probabilities = np.asarray(document["probabilities"], dtype=np.float64)
    matrix = RRMatrix(probabilities)
    declared = document.get("n_categories")
    if declared is not None and int(declared) != matrix.n_categories:
        raise ValidationError(
            f"declared n_categories {declared} does not match matrix size {matrix.n_categories}"
        )
    return matrix


def result_to_dict(result: OptimizationResult, *, include_optimal_set: bool = False) -> dict[str, Any]:
    """Serialize an optimization result (front + metadata) to a dictionary."""
    def point_to_dict(point: ParetoPoint) -> dict[str, Any]:
        return {
            "privacy": point.privacy,
            "utility": point.utility,
            "max_posterior": point.max_posterior,
            "matrix": matrix_to_dict(point.matrix),
        }

    document: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "type": "optimization_result",
        "n_generations": result.n_generations,
        "n_evaluations": result.n_evaluations,
        "points": [point_to_dict(point) for point in result.points],
    }
    if include_optimal_set:
        document["optimal_set_points"] = [
            point_to_dict(point) for point in result.optimal_set_points
        ]
    return document


def result_from_dict(document: dict[str, Any]) -> OptimizationResult:
    """Deserialize an optimization result from :func:`result_to_dict` output."""
    _check_document(document, "optimization_result")

    def point_from_dict(item: dict[str, Any]) -> ParetoPoint:
        return ParetoPoint(
            matrix=matrix_from_dict(item["matrix"]),
            privacy=float(item["privacy"]),
            utility=float(item["utility"]),
            max_posterior=float(item["max_posterior"]),
        )

    return OptimizationResult(
        points=tuple(point_from_dict(item) for item in document.get("points", [])),
        optimal_set_points=tuple(
            point_from_dict(item) for item in document.get("optimal_set_points", [])
        ),
        n_generations=int(document.get("n_generations", 0)),
        n_evaluations=int(document.get("n_evaluations", 0)),
    )


def front_to_dict(front: "ParetoFront") -> dict[str, Any]:
    """Serialize a Pareto front (points plus any attached matrices)."""
    return {
        "name": front.name,
        "points": [
            {
                "privacy": float(point.privacy),
                "utility": float(point.utility),
                "matrix": matrix_to_dict(point.matrix) if point.matrix is not None else None,
            }
            for point in front.points
        ],
    }


def front_from_dict(document: dict[str, Any]) -> "ParetoFront":
    """Deserialize a Pareto front from :func:`front_to_dict` output."""
    from repro.analysis.front import FrontPoint, ParetoFront

    points = tuple(
        FrontPoint(
            privacy=float(item["privacy"]),
            utility=float(item["utility"]),
            matrix=matrix_from_dict(item["matrix"]) if item.get("matrix") else None,
        )
        for item in document.get("points", [])
    )
    return ParetoFront(str(document["name"]), points)


def comparison_to_dict(comparison: "FrontComparison") -> dict[str, Any]:
    """Serialize a front comparison (all indicator fields)."""
    return {
        "candidate_name": comparison.candidate_name,
        "baseline_name": comparison.baseline_name,
        "candidate_privacy_range": [float(v) for v in comparison.candidate_privacy_range],
        "baseline_privacy_range": [float(v) for v in comparison.baseline_privacy_range],
        "extra_privacy_range": float(comparison.extra_privacy_range),
        "mean_utility_ratio": float(comparison.mean_utility_ratio),
        "candidate_wins": int(comparison.candidate_wins),
        "baseline_wins": int(comparison.baseline_wins),
        "ties": int(comparison.ties),
        "hypervolume_candidate": float(comparison.hypervolume_candidate),
        "hypervolume_baseline": float(comparison.hypervolume_baseline),
        "coverage_candidate_over_baseline": float(
            comparison.coverage_candidate_over_baseline
        ),
        "additive_epsilon": float(comparison.additive_epsilon),
    }


def comparison_from_dict(document: dict[str, Any]) -> "FrontComparison":
    """Deserialize a front comparison from :func:`comparison_to_dict` output."""
    from repro.analysis.compare import FrontComparison

    return FrontComparison(
        candidate_name=str(document["candidate_name"]),
        baseline_name=str(document["baseline_name"]),
        candidate_privacy_range=tuple(
            float(v) for v in document["candidate_privacy_range"]
        ),
        baseline_privacy_range=tuple(
            float(v) for v in document["baseline_privacy_range"]
        ),
        extra_privacy_range=float(document["extra_privacy_range"]),
        mean_utility_ratio=float(document["mean_utility_ratio"]),
        candidate_wins=int(document["candidate_wins"]),
        baseline_wins=int(document["baseline_wins"]),
        ties=int(document["ties"]),
        hypervolume_candidate=float(document["hypervolume_candidate"]),
        hypervolume_baseline=float(document["hypervolume_baseline"]),
        coverage_candidate_over_baseline=float(
            document["coverage_candidate_over_baseline"]
        ),
        additive_epsilon=float(document["additive_epsilon"]),
    )


def experiment_result_to_dict(result: "ExperimentResult") -> dict[str, Any]:
    """Serialize an experiment result (fronts, comparison, verdict, metrics).

    This is the ``experiment_result`` document type the campaign cache
    stores; campaign workers also ship results to the parent process in this
    form so cached and freshly-computed runs are bit-for-bit interchangeable.
    The ``backend`` key records which array backend produced the result
    (informational — deserialization ignores it).
    """
    from repro.backend.registry import active_backend_name

    return {
        "format_version": FORMAT_VERSION,
        "type": "experiment_result",
        "backend": active_backend_name(),
        "experiment_id": result.experiment_id,
        "reproduced": bool(result.reproduced),
        "summary": list(result.summary),
        "metrics": {key: float(value) for key, value in result.metrics.items()},
        "fronts": {name: front_to_dict(front) for name, front in result.fronts.items()},
        "comparison": (
            comparison_to_dict(result.comparison) if result.comparison is not None else None
        ),
    }


def experiment_result_from_dict(document: dict[str, Any]) -> "ExperimentResult":
    """Deserialize an experiment result from :func:`experiment_result_to_dict`
    output."""
    from repro.experiments.base import ExperimentResult

    _check_document(document, "experiment_result")
    comparison_document = document.get("comparison")
    return ExperimentResult(
        experiment_id=str(document["experiment_id"]),
        fronts={
            name: front_from_dict(front_document)
            for name, front_document in document.get("fronts", {}).items()
        },
        comparison=(
            comparison_from_dict(comparison_document) if comparison_document else None
        ),
        reproduced=bool(document.get("reproduced", False)),
        summary=tuple(str(line) for line in document.get("summary", [])),
        metrics={
            key: float(value) for key, value in document.get("metrics", {}).items()
        },
    )


def pipeline_result_to_dict(result: "PipelineResult") -> dict[str, Any]:
    """Serialize a pipeline result (spec, scheme evaluations, cell table).

    This is the ``pipeline_result`` document type: the per-scheme ×
    per-miner × per-seed metric table produced by
    :func:`repro.pipeline.run_pipeline`, with every scheme's full RR matrix
    embedded so the run is reproducible from the document alone.
    """
    spec = result.spec
    evaluation_by_scheme = {item.scheme: item for item in result.evaluations}
    return {
        "format_version": FORMAT_VERSION,
        "type": "pipeline_result",
        "data": spec.data,
        "n_records": spec.n_records,
        "n_categories": spec.n_categories,
        "seeds": list(spec.seeds),
        "miners": list(spec.miners),
        "miner_params": {
            miner: dict(items) for miner, items in spec.miner_params
        },
        "schemes": [
            {
                "name": scheme.name,
                "matrix": matrix_to_dict(scheme.matrix),
                "privacy": evaluation_by_scheme[scheme.name].privacy,
                "utility": evaluation_by_scheme[scheme.name].utility,
                "max_posterior": evaluation_by_scheme[scheme.name].max_posterior,
                "invertible": evaluation_by_scheme[scheme.name].invertible,
            }
            for scheme in spec.schemes
        ],
        "cells": [
            {
                "scheme": cell.scheme,
                "seed": cell.seed,
                "miner": cell.miner,
                "metrics": {key: float(value) for key, value in sorted(cell.metrics.items())},
            }
            for cell in result.cells
        ],
        # The failure manifest appears only when something failed, keeping
        # fault-free documents byte-identical to pre-resilience builds.
        **(
            {"failure_manifest": result.failure_manifest}
            if result.failure_manifest is not None
            else {}
        ),
    }


def pipeline_result_from_dict(document: dict[str, Any]) -> "PipelineResult":
    """Deserialize a pipeline result from :func:`pipeline_result_to_dict`
    output (cache provenance flags reset — a loaded document no longer knows
    which cells were cache hits)."""
    from repro.pipeline.runner import (
        PipelineCellRecord,
        PipelineResult,
        SchemeEvaluation,
    )
    from repro.pipeline.spec import PipelineScheme, PipelineSpec

    _check_document(document, "pipeline_result")
    schemes = tuple(
        PipelineScheme(name=str(item["name"]), matrix=matrix_from_dict(item["matrix"]))
        for item in document.get("schemes", [])
    )
    evaluations = tuple(
        SchemeEvaluation(
            scheme=str(item["name"]),
            privacy=float(item["privacy"]),
            utility=float(item["utility"]),
            max_posterior=float(item["max_posterior"]),
            invertible=bool(item.get("invertible", True)),
        )
        for item in document.get("schemes", [])
    )
    miner_params = tuple(
        (str(miner), tuple(sorted(dict(params).items())))
        for miner, params in document.get("miner_params", {}).items()
    )
    raw_categories = document.get("n_categories")
    spec = PipelineSpec(
        data=str(document["data"]),
        n_records=int(document["n_records"]),
        n_categories=int(raw_categories) if raw_categories is not None else None,
        schemes=schemes,
        miners=tuple(str(miner) for miner in document.get("miners", [])),
        seeds=tuple(int(seed) for seed in document.get("seeds", [])),
        miner_params=miner_params,
    )
    cells = tuple(
        PipelineCellRecord(
            scheme=str(item["scheme"]),
            seed=int(item["seed"]),
            miner=str(item["miner"]),
            metrics={key: float(value) for key, value in item.get("metrics", {}).items()},
            from_cache=False,
        )
        for item in document.get("cells", [])
    )
    manifest = document.get("failure_manifest")
    failures: tuple[tuple[str, int, str], ...] = ()
    if manifest is not None:
        failures = tuple(
            (str(cell["scheme"]), int(cell["seed"]), str(cell["miner"]))
            for cell in manifest.get("cells", [])
            if cell.get("quarantined")
        )
    return PipelineResult(
        spec=spec,
        evaluations=evaluations,
        cells=cells,
        failures=failures,
        failure_manifest=manifest,
    )


def save_pipeline_result(result: "PipelineResult", path: str | Path) -> Path:
    """Write a pipeline result to a canonical-JSON file and return the path."""
    path = Path(path)
    path.write_text(dump_canonical_json(pipeline_result_to_dict(result)), encoding="utf-8")
    return path


def load_pipeline_result(path: str | Path) -> "PipelineResult":
    """Read a pipeline result from a JSON file written by
    :func:`save_pipeline_result`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return pipeline_result_from_dict(document)


def checkpoint_rotation_path(path: str | Path) -> Path:
    """The ``.prev`` rotation sibling of a checkpoint file."""
    path = Path(path)
    return path.with_name(path.name + ".prev")


def checkpoint_quarantine_path(path: str | Path) -> Path:
    """Where a corrupt checkpoint file is parked for forensics."""
    path = Path(path)
    return path.with_name(path.name + ".corrupt")


def save_checkpoint(document: dict[str, Any], path: str | Path) -> Path:
    """Atomically write a ``checkpoint`` document and return its path.

    Checkpoints are produced by :meth:`repro.core.driver.OptimizationDriver.
    checkpoint_document`: a versioned snapshot of a whole optimization run
    (population/archive/Ω arrays as base64 bytes, termination counters, the
    NumPy bit-generator state).  The write goes through a temporary file in
    the destination directory plus :func:`os.replace`, so a run killed
    mid-checkpoint never leaves a partial document — the previous checkpoint
    survives intact.  Additionally the previous checkpoint is rotated to a
    ``.prev`` sibling rather than overwritten, so even a checkpoint that was
    written whole and corrupted *afterwards* (torn page, bit rot) leaves a
    valid predecessor for :func:`load_checkpoint_with_fallback`.  Compact
    JSON keeps the per-generation serialization cost off the optimization
    hot path.
    """
    _check_document(document, "checkpoint")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temporary = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-checkpoint-", suffix=".json"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(document, sort_keys=True, separators=(",", ":")))
        if path.exists():
            os.replace(path, checkpoint_rotation_path(path))
        os.replace(temporary, path)
    except BaseException:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise
    truncate_checkpoint_file(path)
    return path


def load_checkpoint(path: str | Path) -> dict[str, Any]:
    """Read and validate a ``checkpoint`` document written by
    :func:`save_checkpoint`.

    Only the document envelope is validated here (type and format version);
    the algorithm-specific payload is validated by
    :meth:`repro.core.driver.OptimizationDriver.restore`.

    A *missing* checkpoint raises :class:`FileNotFoundError`; a file that
    exists but does not decode or validate raises
    :class:`~repro.exceptions.CheckpointCorruptionError` — distinct failure
    modes, because resume treats them differently (fresh start versus
    fallback to the previous valid checkpoint).
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise CheckpointCorruptionError(
            f"checkpoint {path} is not decodable JSON: {exc}"
        ) from exc
    try:
        _check_document(document, "checkpoint")
    except ValidationError as exc:
        raise CheckpointCorruptionError(
            f"checkpoint {path} failed envelope validation: {exc}"
        ) from exc
    return document


def load_checkpoint_with_fallback(path: str | Path) -> tuple[dict[str, Any], Path]:
    """Load ``path``'s checkpoint, falling back to its ``.prev`` rotation.

    Corrupt candidates are quarantined (renamed to ``.corrupt`` with a
    logged warning) before the next candidate is tried.  Returns the
    document together with the path it was actually read from.  Raises
    :class:`FileNotFoundError` when no candidate exists at all, and
    :class:`~repro.exceptions.CheckpointCorruptionError` when candidates
    existed but none was valid.
    """
    path = Path(path)
    corruption: CheckpointCorruptionError | None = None
    for candidate in (path, checkpoint_rotation_path(path)):
        if not candidate.is_file():
            continue
        try:
            document = load_checkpoint(candidate)
        except CheckpointCorruptionError as exc:
            if corruption is None:
                corruption = exc
            quarantine = checkpoint_quarantine_path(candidate)
            try:
                os.replace(candidate, quarantine)
            except OSError:  # pragma: no cover - quarantine is best effort
                continue
            logger.warning(
                "quarantined corrupt checkpoint %s -> %s (%s)",
                candidate.name, quarantine.name, exc,
            )
            continue
        if candidate != path:
            logger.warning(
                "checkpoint %s unusable; resuming from rotation sibling %s",
                path.name, candidate.name,
            )
        return document, candidate
    if corruption is not None:
        raise CheckpointCorruptionError(
            f"no valid checkpoint at {path}: newest and .prev rotation are "
            f"both corrupt or missing"
        ) from corruption
    raise FileNotFoundError(f"no checkpoint at {path}")


def dump_canonical_json(document: dict[str, Any]) -> str:
    """Render a document as canonical JSON (sorted keys, fixed indent).

    The campaign cache and the campaign aggregates rely on this being
    deterministic: the same document always produces the same bytes.
    """
    return json.dumps(document, indent=2, sort_keys=True)


def save_experiment_result(result: "ExperimentResult", path: str | Path) -> Path:
    """Write an experiment result to a canonical-JSON file and return the
    path."""
    path = Path(path)
    path.write_text(dump_canonical_json(experiment_result_to_dict(result)), encoding="utf-8")
    return path


def load_experiment_result(path: str | Path) -> "ExperimentResult":
    """Read an experiment result from a JSON file written by
    :func:`save_experiment_result`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return experiment_result_from_dict(document)


def save_matrix(matrix: RRMatrix, path: str | Path) -> Path:
    """Write an RR matrix to a JSON file and return the path."""
    path = Path(path)
    path.write_text(json.dumps(matrix_to_dict(matrix), indent=2), encoding="utf-8")
    return path


def load_matrix(path: str | Path) -> RRMatrix:
    """Read an RR matrix from a JSON file written by :func:`save_matrix`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return matrix_from_dict(document)


def save_result(
    result: OptimizationResult, path: str | Path, *, include_optimal_set: bool = False
) -> Path:
    """Write an optimization result to a JSON file and return the path."""
    path = Path(path)
    document = result_to_dict(result, include_optimal_set=include_optimal_set)
    path.write_text(json.dumps(document, indent=2), encoding="utf-8")
    return path


def load_result(path: str | Path) -> OptimizationResult:
    """Read an optimization result from a JSON file written by
    :func:`save_result`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return result_from_dict(document)


def _check_document(document: dict[str, Any], expected_type: str) -> None:
    if not isinstance(document, dict):
        raise ValidationError("serialized document must be a JSON object")
    if document.get("type") != expected_type:
        raise ValidationError(
            f"expected a {expected_type!r} document, got {document.get('type')!r}"
        )
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported format version {version!r} (supported: {FORMAT_VERSION})"
        )
