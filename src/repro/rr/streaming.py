"""Streaming RR runtime: bounded-memory disguise and online reconstruction.

This module is the paper's deployment story (Section III) as a streaming
pipeline — the first slice of the ROADMAP's ``optrr serve``:

* :class:`StreamingDisguiser` disguises integer codes chunk by chunk.  Its
  single seeded generator draws each chunk's uniforms **sequentially**, and
  the disguise kernel is elementwise per record, so the concatenation of the
  chunked outputs is bit-identical to one-shot
  :meth:`~repro.rr.randomize.RandomizedResponse.randomize_codes` with the
  same seed — for every chunking, ragged tails included.
* :class:`CountAccumulator` keeps running per-category counts of the
  disguised stream in O(n) memory, with a ``state_document`` /
  ``restore_state`` codec riding the checkpoint array encoding so a killed
  stream restarts warm and bit-identically.
* :class:`OnlineEstimator` re-estimates the original distribution after each
  chunk from the accumulated counts (inversion or iterative method).  The
  iterative fixed point is warm-started from the previous chunk's estimate,
  which converges in a handful of iterations once the counts stabilise, and
  per-chunk convergence diagnostics are kept for reporting.

All state round-trips through plain-JSON documents, so the kill/resume
invariant of the optimizer (resume == uninterrupted, bit for bit) extends to
the streaming runtime.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.exceptions import EstimationError, ValidationError
from repro.rr.estimation import (
    DistributionEstimate,
    InversionEstimator,
    IterativeEstimator,
)
from repro.rr.matrix import RRMatrix
from repro.rr.randomize import RandomizedResponse, check_codes
from repro.types import SeedLike, as_rng
from repro.utils.arrays import decode_array, encode_array
from repro.utils.validation import check_positive_int

#: Schema tags of the streaming state documents (bumped on layout changes).
DISGUISER_STATE_SCHEMA = "streaming-disguiser-v1"
ACCUMULATOR_STATE_SCHEMA = "count-accumulator-v1"
ESTIMATOR_STATE_SCHEMA = "online-estimator-v1"


def iter_chunks(codes: np.ndarray, chunk_size: int) -> Iterator[np.ndarray]:
    """Yield successive ``chunk_size`` views of a 1-D code array.

    The final chunk is ragged when ``chunk_size`` does not divide the length.
    Views, not copies: chunking adds no memory over the input itself.
    """
    check_positive_int(chunk_size, "chunk_size")
    codes = np.asarray(codes)
    for start in range(0, codes.size, chunk_size):
        yield codes[start : start + chunk_size]


def _plain_state(value: Any) -> Any:
    """Recursively convert numpy scalars in a bit-generator state dict to
    native Python types (exact: Python ints are arbitrary precision)."""
    if isinstance(value, dict):
        return {key: _plain_state(entry) for key, entry in value.items()}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):  # pragma: no cover - PCG64 state is ints
        return float(value)
    return value


def _check_schema(schema: Any, expected: str, owner: str) -> None:
    if schema != expected:
        raise ValidationError(
            f"cannot restore {owner} state: schema {schema!r} != {expected!r}"
        )


class StreamingDisguiser:
    """Chunked RR disguise, bit-identical to the one-shot mechanism.

    Parameters
    ----------
    matrix:
        The RR matrix to disguise with.
    seed:
        Seed of the single internal generator.  Feeding the stream in chunks
        of any size reproduces ``RandomizedResponse(matrix)
        .randomize_codes(all_codes, seed=seed)`` exactly, because successive
        ``rng.random(c_k)`` draws on one generator concatenate bit-identically
        to one ``rng.random(sum c_k)`` draw.
    """

    def __init__(self, matrix: RRMatrix, seed: SeedLike = None) -> None:
        self._mechanism = RandomizedResponse(matrix)
        self._rng = as_rng(seed)
        self._records_seen = 0

    @property
    def matrix(self) -> RRMatrix:
        return self._mechanism.matrix

    @property
    def n_categories(self) -> int:
        return self._mechanism.n_categories

    @property
    def records_seen(self) -> int:
        """Total records disguised so far."""
        return self._records_seen

    def disguise_chunk(self, codes: np.ndarray) -> np.ndarray:
        """Disguise the next chunk of the stream."""
        # Passing the live generator as the seed advances it sequentially —
        # the mechanism draws exactly `codes.size` uniforms per chunk.
        disguised = self._mechanism.randomize_codes(codes, seed=self._rng)
        self._records_seen += disguised.size
        return disguised

    def state_document(self) -> dict[str, Any]:
        """JSON-compatible snapshot for a warm restart."""
        return {
            "schema": DISGUISER_STATE_SCHEMA,
            "rng_state": _plain_state(self._rng.bit_generator.state),
            "records_seen": int(self._records_seen),
        }

    def restore_state(self, document: dict[str, Any]) -> None:
        """Restore a :meth:`state_document` snapshot (bit-exact resume)."""
        _check_schema(document.get("schema"), DISGUISER_STATE_SCHEMA, "StreamingDisguiser")
        try:
            self._rng.bit_generator.state = document["rng_state"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"cannot restore RNG state: {exc}") from exc
        self._records_seen = int(document["records_seen"])


class CountAccumulator:
    """Running per-category counts of a disguised code stream.

    O(n) memory regardless of stream length; the counts ride the checkpoint
    array codec so a killed stream resumes with bit-identical totals.
    """

    def __init__(self, n_categories: int) -> None:
        check_positive_int(n_categories, "n_categories")
        self._n_categories = int(n_categories)
        self._counts = np.zeros(self._n_categories, dtype=np.int64)
        self._n_records = 0

    @property
    def n_categories(self) -> int:
        return self._n_categories

    @property
    def n_records(self) -> int:
        """Total records accumulated so far."""
        return self._n_records

    @property
    def counts(self) -> np.ndarray:
        """Copy of the current per-category counts (int64)."""
        return self._counts.copy()

    def update(self, codes: np.ndarray) -> None:
        """Accumulate one chunk of disguised codes."""
        codes = check_codes(codes, self._n_categories)
        self._counts += np.bincount(codes, minlength=self._n_categories)
        self._n_records += codes.size

    def state_document(self) -> dict[str, Any]:
        """JSON-compatible snapshot (counts via the checkpoint array codec)."""
        return {
            "schema": ACCUMULATOR_STATE_SCHEMA,
            "counts": encode_array(self._counts),
            "n_records": int(self._n_records),
        }

    def restore_state(self, document: dict[str, Any]) -> None:
        """Restore a :meth:`state_document` snapshot (bit-exact resume)."""
        _check_schema(document.get("schema"), ACCUMULATOR_STATE_SCHEMA, "CountAccumulator")
        counts = decode_array(document["counts"])
        if counts.shape != (self._n_categories,):
            raise ValidationError(
                f"cannot restore CountAccumulator state: counts shape "
                f"{counts.shape} != ({self._n_categories},)"
            )
        self._counts = counts.astype(np.int64, copy=False)
        self._n_records = int(document["n_records"])


#: Estimation methods the online estimator understands.
_ONLINE_METHODS = ("inversion", "iterative")


class OnlineEstimator:
    """Incremental distribution reconstruction over accumulated counts.

    After each chunk the estimate is recomputed from the *running* counts —
    O(n) state, never the stream itself.  With ``method="iterative"`` the
    Bayes fixed point is warm-started from the previous chunk's estimate:
    once the empirical disguised distribution stabilises, each refresh needs
    only a few iterations instead of restarting from uniform.  Per-chunk
    convergence diagnostics (iterations used, converged flag) are kept in
    :attr:`diagnostics`.
    """

    def __init__(self, matrix: RRMatrix, method: str = "inversion", **options) -> None:
        if method not in _ONLINE_METHODS:
            raise EstimationError(
                f"unknown estimation method {method!r}; "
                f"accepted: {', '.join(map(repr, _ONLINE_METHODS))}"
            )
        self._matrix = matrix
        self._method = method
        if method == "inversion":
            self._estimator: InversionEstimator | IterativeEstimator = (
                InversionEstimator(**options)
            )
        else:
            self._estimator = IterativeEstimator(**options)
        self._accumulator = CountAccumulator(matrix.n_categories)
        self._warm_start: np.ndarray | None = None
        self._diagnostics: list[dict[str, Any]] = []

    @property
    def method(self) -> str:
        return self._method

    @property
    def matrix(self) -> RRMatrix:
        return self._matrix

    @property
    def n_records(self) -> int:
        """Total disguised records folded into the estimate so far."""
        return self._accumulator.n_records

    @property
    def counts(self) -> np.ndarray:
        """Copy of the accumulated per-category counts."""
        return self._accumulator.counts

    @property
    def diagnostics(self) -> tuple[dict[str, Any], ...]:
        """Per-chunk convergence diagnostics, oldest first."""
        return tuple(dict(entry) for entry in self._diagnostics)

    def update(self, disguised_codes: np.ndarray) -> DistributionEstimate:
        """Fold one chunk of disguised codes in and return the new estimate."""
        self._accumulator.update(disguised_codes)
        estimate = self._estimate()
        self._diagnostics.append(
            {
                "chunk_index": len(self._diagnostics),
                "chunk_records": int(np.asarray(disguised_codes).size),
                "total_records": self._accumulator.n_records,
                "n_iterations": estimate.n_iterations,
                "converged": bool(estimate.converged),
            }
        )
        return estimate

    def current_estimate(self) -> DistributionEstimate:
        """Re-estimate from the accumulated counts without new data."""
        if self._accumulator.n_records == 0:
            raise EstimationError("no records accumulated yet")
        return self._estimate()

    def _estimate(self) -> DistributionEstimate:
        counts = self._accumulator.counts.astype(np.float64)
        if isinstance(self._estimator, IterativeEstimator):
            estimate = self._estimator.estimate(
                counts, self._matrix, initial=self._warm_start
            )
            # Warm-start the next refresh from this fixed point.
            self._warm_start = estimate.probabilities.copy()
        else:
            estimate = self._estimator.estimate(counts, self._matrix)
        return estimate

    def state_document(self) -> dict[str, Any]:
        """JSON-compatible snapshot (accumulator + warm start + diagnostics)."""
        return {
            "schema": ESTIMATOR_STATE_SCHEMA,
            "method": self._method,
            "accumulator": self._accumulator.state_document(),
            "warm_start": (
                None if self._warm_start is None else encode_array(self._warm_start)
            ),
            "diagnostics": [dict(entry) for entry in self._diagnostics],
        }

    def restore_state(self, document: dict[str, Any]) -> None:
        """Restore a :meth:`state_document` snapshot (bit-exact resume)."""
        _check_schema(document.get("schema"), ESTIMATOR_STATE_SCHEMA, "OnlineEstimator")
        method = document["method"]
        if method != self._method:
            raise ValidationError(
                f"cannot restore OnlineEstimator state: method {method!r} "
                f"!= {self._method!r}"
            )
        self._accumulator.restore_state(document["accumulator"])
        warm_start = document["warm_start"]
        self._warm_start = None if warm_start is None else decode_array(warm_start)
        self._diagnostics = [dict(entry) for entry in document["diagnostics"]]
