"""Randomized-response substrate.

This package implements everything the paper assumes about the randomized
response technique itself: the RR matrix abstraction, the classic scheme
constructors (Warner, Uniform Perturbation, FRAPP), parametric scheme
families, the disguise mechanism, the inversion and iterative distribution
estimators (Theorem 1 and Eq. 3), and the multi-dimensional extension noted as
future work.
"""

from repro.rr.matrix import RRMatrix, random_rr_matrix
from repro.rr.schemes import (
    frapp_matrix,
    identity_matrix,
    total_randomization_matrix,
    uniform_perturbation_matrix,
    warner_matrix,
)
from repro.rr.family import (
    FrappFamily,
    SchemeFamily,
    UniformPerturbationFamily,
    WarnerFamily,
    scheme_family,
)
from repro.rr.randomize import RandomizedResponse
from repro.rr.estimation import (
    DistributionEstimate,
    InversionEstimator,
    IterativeEstimator,
    estimate_distribution,
)
from repro.rr.streaming import (
    CountAccumulator,
    OnlineEstimator,
    StreamingDisguiser,
    iter_chunks,
)
from repro.rr.multidim import MultiDimensionalRR
from repro.rr.ldp import (
    epsilon_for_delta_bound,
    k_rr_matrix,
    ldp_epsilon,
    satisfies_ldp,
)

__all__ = [
    "epsilon_for_delta_bound",
    "k_rr_matrix",
    "ldp_epsilon",
    "satisfies_ldp",
    "CountAccumulator",
    "DistributionEstimate",
    "FrappFamily",
    "InversionEstimator",
    "IterativeEstimator",
    "MultiDimensionalRR",
    "OnlineEstimator",
    "RRMatrix",
    "RandomizedResponse",
    "SchemeFamily",
    "StreamingDisguiser",
    "UniformPerturbationFamily",
    "WarnerFamily",
    "estimate_distribution",
    "iter_chunks",
    "frapp_matrix",
    "identity_matrix",
    "random_rr_matrix",
    "scheme_family",
    "total_randomization_matrix",
    "uniform_perturbation_matrix",
    "warner_matrix",
]
