"""Frozen broadcast reference for the ``disguise_codes`` kernel.

This is the pre-seam ``(n, N)`` broadcast implementation of the RR disguise,
kept verbatim as the executable specification of the kernel's semantics: the
cross-backend equivalence suite and ``benchmarks/bench_rr_runtime.py`` compare
every backend's ``disguise_codes`` against it bit for bit.  It must never be
used on a hot path — it materialises the ``(n, N)`` float intermediate the
backend kernels exist to avoid — and must never change: any fix that moves
its output is by definition a change to the disguise contract and would fork
every fixed-seed trajectory, pipeline document and cache key in the repo.
"""

from __future__ import annotations

import numpy as np


def broadcast_disguise_reference(
    probabilities: np.ndarray, codes: np.ndarray, uniforms: np.ndarray
) -> np.ndarray:
    """The historical ``(n, N)`` broadcast disguise (frozen specification).

    Same signature and semantics as
    :meth:`repro.backend.base.ArrayBackend.disguise_codes`: for record ``k``
    with true code ``c``, count the column-CDF entries strictly below
    ``uniforms[k]`` — i.e. the first row ``j`` with ``cdf[j, c] >=
    uniforms[k]``.
    """
    cdf = np.cumsum(probabilities, axis=0)
    cdf[-1, :] = 1.0
    column_cdfs = cdf[:, codes]  # the (n, N) intermediate — reference only
    return (uniforms[None, :] > column_cdfs).sum(axis=0).astype(np.int64)
