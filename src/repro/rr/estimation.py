"""Distribution estimators for randomized-response disguised data.

Two estimators are implemented, matching Section III-A of the paper:

* :class:`InversionEstimator` — the closed-form unbiased MLE
  ``P_hat = M^-1 P*_hat`` (Theorem 1), where ``P*_hat`` is the empirical
  distribution of the disguised data.
* :class:`IterativeEstimator` — the Bayes-update fixed-point iteration of
  Agrawal et al. (Eq. 3), which never produces negative probabilities and is
  used in the paper's Figure 5(d) to confirm that the optimized matrices also
  win when this estimator is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.data.distribution import CategoricalDistribution
from repro.exceptions import EstimationError
from repro.rr.matrix import RRMatrix
from repro.utils.validation import check_positive_int, check_probability_vector


@dataclass(frozen=True)
class DistributionEstimate:
    """Result of estimating the original distribution from disguised data.

    Attributes
    ----------
    probabilities:
        The estimated original distribution.  The inversion estimator may
        produce values slightly outside ``[0, 1]``; they are reported raw in
        ``raw_probabilities`` and clipped/renormalised here.
    raw_probabilities:
        The uncorrected estimate (useful for diagnostics and for computing
        unbiased errors).
    n_iterations:
        Number of iterations performed (0 for the closed-form estimator).
    converged:
        Whether the estimator converged (always True for the inversion
        estimator).
    """

    probabilities: np.ndarray
    raw_probabilities: np.ndarray
    n_iterations: int = 0
    converged: bool = True

    def as_distribution(self, categories: tuple[str, ...] | None = None) -> CategoricalDistribution:
        """Return the (corrected) estimate as a distribution object."""
        return CategoricalDistribution(
            self.probabilities, tuple(categories) if categories else ()
        )

    def mean_squared_error(self, true_probabilities: np.ndarray) -> float:
        """Mean squared error of the corrected estimate against the truth."""
        truth = check_probability_vector(true_probabilities, "true_probabilities")
        return float(np.mean((self.probabilities - truth) ** 2))


class DistributionEstimator(Protocol):
    """Protocol shared by all distribution estimators."""

    def estimate(
        self, disguised_counts: np.ndarray, matrix: RRMatrix
    ) -> DistributionEstimate:  # pragma: no cover - protocol
        ...


def _empirical_disguised_distribution(disguised_counts: np.ndarray, n_categories: int) -> np.ndarray:
    counts = np.asarray(disguised_counts, dtype=np.float64)
    if counts.ndim != 1 or counts.size != n_categories:
        raise EstimationError(
            f"disguised counts must be a vector of length {n_categories}, "
            f"got shape {counts.shape}"
        )
    if np.any(counts < 0):
        raise EstimationError("disguised counts must be non-negative")
    total = counts.sum()
    if total <= 0:
        raise EstimationError("disguised counts must not be all zero")
    return counts / total


def counts_from_codes(codes: np.ndarray, n_categories: int) -> np.ndarray:
    """Histogram integer-coded disguised values into per-category counts."""
    check_positive_int(n_categories, "n_categories")
    codes = np.ascontiguousarray(codes, dtype=np.int64)
    if codes.ndim != 1 or codes.size == 0:
        raise EstimationError("codes must be a non-empty one-dimensional array")
    # Single-pass domain check: viewed as uint64, negatives wrap to huge
    # values, so one `>= n` comparison covers both bounds.
    if (codes.view(np.uint64) >= np.uint64(n_categories)).any():
        raise EstimationError(f"codes must lie in [0, {n_categories})")
    return np.bincount(codes, minlength=n_categories).astype(np.float64)


@dataclass(frozen=True)
class InversionEstimator:
    """Closed-form unbiased MLE via matrix inversion (Theorem 1).

    Parameters
    ----------
    clip_negative:
        When True (default), the corrected estimate clips negative entries to
        zero and renormalises; the raw estimate is always preserved in
        ``raw_probabilities``.
    """

    clip_negative: bool = True

    def estimate(self, disguised_counts: np.ndarray, matrix: RRMatrix) -> DistributionEstimate:
        """Estimate the original distribution from disguised counts."""
        p_star = _empirical_disguised_distribution(disguised_counts, matrix.n_categories)
        raw = matrix.inverse() @ p_star
        corrected = raw.copy()
        if self.clip_negative:
            corrected = np.clip(corrected, 0.0, None)
            total = corrected.sum()
            if total <= 0:
                raise EstimationError(
                    "inversion estimate collapsed to the zero vector; the RR "
                    "matrix is too close to singular for this sample"
                )
            corrected = corrected / total
        return DistributionEstimate(corrected, raw, n_iterations=0, converged=True)

    def estimate_from_codes(self, codes: np.ndarray, matrix: RRMatrix) -> DistributionEstimate:
        """Estimate from raw disguised codes rather than counts."""
        return self.estimate(counts_from_codes(codes, matrix.n_categories), matrix)


@dataclass(frozen=True)
class IterativeEstimator:
    """Iterative Bayes-update estimator (Agrawal et al., Eq. 3).

    Starting from an initial guess (uniform by default), each step applies

    ``P_{k+1}(c_j) = sum_i P*(c_i) * M[i, j] P_k(c_j) / sum_l M[i, l] P_k(c_l)``

    until successive iterates change by less than ``tolerance`` (L1 norm) or
    ``max_iterations`` is reached.

    Parameters
    ----------
    max_iterations:
        Iteration budget.
    tolerance:
        L1 convergence threshold on successive iterates.
    raise_on_nonconvergence:
        When True, a non-converged run raises ``EstimationError``; otherwise
        the last iterate is returned with ``converged=False``.
    """

    max_iterations: int = 10_000
    tolerance: float = 1e-9
    raise_on_nonconvergence: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.max_iterations, "max_iterations")
        if self.tolerance <= 0:
            raise EstimationError("tolerance must be positive")

    def estimate(
        self,
        disguised_counts: np.ndarray,
        matrix: RRMatrix,
        *,
        initial: np.ndarray | None = None,
    ) -> DistributionEstimate:
        """Estimate the original distribution from disguised counts."""
        n = matrix.n_categories
        p_star = _empirical_disguised_distribution(disguised_counts, n)
        if initial is None:
            current = np.full(n, 1.0 / n)
        else:
            current = check_probability_vector(initial, "initial")
            if current.size != n:
                raise EstimationError(
                    f"initial estimate must have length {n}, got {current.size}"
                )
        theta = matrix.probabilities  # theta[i, j] = P(Y = c_i | X = c_j)
        iterations = 0
        converged = False
        # Per-iteration workspaces: the `theta / safe` weighting previously
        # built two fresh (n, n) temporaries every iteration.  Writing the
        # division into a reused buffer and zeroing the impossible-report
        # rows in place is the same op sequence — identical quotients where
        # denominators > 0, exact 0.0 elsewhere — so iterates are unchanged.
        safe = np.empty(n)
        weights = np.empty_like(theta)
        for iterations in range(1, self.max_iterations + 1):
            denominators = theta @ current  # P_k(Y = c_i)
            # Avoid division by zero for reports that are impossible under the
            # current iterate; their posterior contribution is zero anyway.
            impossible = denominators <= 0
            np.copyto(safe, denominators)
            safe[impossible] = 1.0
            np.divide(theta, safe[:, None], out=weights)
            weights[impossible, :] = 0.0
            updated = current * (p_star @ weights)
            total = updated.sum()
            if total <= 0:
                raise EstimationError("iterative estimator collapsed to zero mass")
            updated = updated / total
            if np.abs(updated - current).sum() < self.tolerance:
                current = updated
                converged = True
                break
            current = updated
        if not converged and self.raise_on_nonconvergence:
            raise EstimationError(
                f"iterative estimator did not converge in {self.max_iterations} iterations"
            )
        # One defensive copy serves both fields: the iterative estimate needs
        # no clipping, so the corrected and raw views are the same vector.
        final = current.copy()
        return DistributionEstimate(
            final, final, n_iterations=iterations, converged=converged
        )

    def estimate_from_codes(
        self, codes: np.ndarray, matrix: RRMatrix, *, initial: np.ndarray | None = None
    ) -> DistributionEstimate:
        """Estimate from raw disguised codes rather than counts."""
        counts = counts_from_codes(codes, matrix.n_categories)
        return self.estimate(counts, matrix, initial=initial)


#: Keyword options each estimation method understands: constructor options of
#: the underlying estimator, plus (for the iterative method) the ``initial``
#: guess forwarded to the estimate call itself.
_INVERSION_OPTIONS = frozenset({"clip_negative"})
_ITERATIVE_CONSTRUCTOR_OPTIONS = frozenset(
    {"max_iterations", "tolerance", "raise_on_nonconvergence"}
)
_ITERATIVE_OPTIONS = _ITERATIVE_CONSTRUCTOR_OPTIONS | {"initial"}


def _check_options(method: str, options: dict, accepted: frozenset[str]) -> None:
    unknown = sorted(set(options) - accepted)
    if unknown:
        raise EstimationError(
            f"unknown option(s) {', '.join(map(repr, unknown))} for the "
            f"{method!r} method; accepted: {', '.join(map(repr, sorted(accepted)))}"
        )


def estimate_distribution(
    codes: np.ndarray,
    matrix: RRMatrix,
    *,
    method: str = "inversion",
    **options,
) -> DistributionEstimate:
    """Convenience wrapper: estimate the original distribution from disguised
    codes using the named method (``"inversion"`` or ``"iterative"``).

    Keyword options are forwarded to the underlying estimator:

    * ``inversion`` accepts ``clip_negative``;
    * ``iterative`` accepts ``max_iterations``, ``tolerance``,
      ``raise_on_nonconvergence`` and the ``initial`` guess.

    An option the chosen method does not understand raises
    :class:`EstimationError` listing the accepted names.
    """
    if method == "inversion":
        _check_options(method, options, _INVERSION_OPTIONS)
        return InversionEstimator(**options).estimate_from_codes(codes, matrix)
    if method == "iterative":
        _check_options(method, options, _ITERATIVE_OPTIONS)
        initial = options.pop("initial", None)
        return IterativeEstimator(**options).estimate_from_codes(
            codes, matrix, initial=initial
        )
    raise EstimationError(f"unknown estimation method {method!r}")
