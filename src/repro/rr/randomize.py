"""The randomized-response disguise mechanism.

:class:`RandomizedResponse` applies an RR matrix to integer-coded data: every
original value ``c_i`` is independently replaced by ``c_j`` with probability
``M[j, i]``.  The mechanism works on raw code arrays, on single attributes of
a :class:`~repro.data.dataset.CategoricalDataset`, and on whole datasets (one
matrix per attribute).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.registry import active_backend
from repro.data.dataset import CategoricalDataset
from repro.exceptions import DataError, RRMatrixError
from repro.rr.matrix import RRMatrix
from repro.types import SeedLike, as_rng


def check_codes(codes: np.ndarray, n_categories: int) -> np.ndarray:
    """Validate an integer code array against a category domain.

    Returns the codes as a C-contiguous int64 array after a **single pass**
    over the data: reinterpreting the int64 values as uint64 wraps negatives
    to huge values, so one ``>= n`` comparison checks both domain bounds at
    once (the two-sided min/max scan only runs on the error path, to build
    the message).
    """
    codes = np.ascontiguousarray(codes, dtype=np.int64)
    if codes.ndim != 1:
        raise DataError(f"codes must be one-dimensional, got shape {codes.shape}")
    if codes.size == 0:
        raise DataError("codes must not be empty")
    if (codes.view(np.uint64) >= np.uint64(n_categories)).any():
        raise DataError(
            f"codes must lie in [0, {n_categories}), "
            f"got range [{codes.min()}, {codes.max()}]"
        )
    return codes


@dataclass(frozen=True)
class RandomizedResponse:
    """Disguise mechanism for a single categorical attribute.

    Parameters
    ----------
    matrix:
        The RR matrix used for disguising.
    """

    matrix: RRMatrix

    @property
    def n_categories(self) -> int:
        """Domain size handled by this mechanism."""
        return self.matrix.n_categories

    def randomize_codes(self, codes: np.ndarray, seed: SeedLike = None) -> np.ndarray:
        """Disguise an integer-coded value array.

        Each input code ``i`` is replaced by a draw from column ``i`` of the
        RR matrix via inverse-CDF sampling.  The single ``rng.random(N)``
        draw happens here, in the pre-seam order, and the deterministic
        searchsorted kernel runs behind the array-backend seam — so backend
        choice can never perturb the seeded stream, and the disguised codes
        are bit-identical to the historical ``(n, N)`` broadcast path while
        peak memory stays O(N + n^2) and compute O(N log n).
        """
        codes = check_codes(codes, self.n_categories)
        rng = as_rng(seed)
        uniforms = rng.random(codes.size)
        return active_backend().disguise_codes(
            self.matrix.probabilities, codes, uniforms
        )

    def randomize_attribute(
        self,
        dataset: CategoricalDataset,
        attribute: str,
        seed: SeedLike = None,
    ) -> CategoricalDataset:
        """Return a copy of ``dataset`` with ``attribute`` disguised."""
        metadata = dataset.attribute(attribute)
        if metadata.n_categories != self.n_categories:
            raise RRMatrixError(
                f"attribute {attribute!r} has {metadata.n_categories} categories "
                f"but the RR matrix is {self.n_categories}x{self.n_categories}"
            )
        disguised = self.randomize_codes(dataset.column(attribute), seed=seed)
        return dataset.with_column(attribute, disguised)

    def expected_disguised_distribution(self, prior: np.ndarray) -> np.ndarray:
        """Return ``P* = M P`` for a prior ``P`` (Eq. 1)."""
        return self.matrix.disguise_distribution(prior)


def randomize_dataset(
    dataset: CategoricalDataset,
    matrices: dict[str, RRMatrix],
    seed: SeedLike = None,
) -> CategoricalDataset:
    """Disguise several attributes of ``dataset`` (one RR matrix each).

    Attributes without a matrix are left untouched.  This is the
    one-dimensional-RR-per-attribute setting the paper focuses on.
    """
    rng = as_rng(seed)
    result = dataset
    for attribute, matrix in matrices.items():
        mechanism = RandomizedResponse(matrix)
        result = mechanism.randomize_attribute(result, attribute, seed=rng)
    return result
