"""The randomized-response disguise mechanism.

:class:`RandomizedResponse` applies an RR matrix to integer-coded data: every
original value ``c_i`` is independently replaced by ``c_j`` with probability
``M[j, i]``.  The mechanism works on raw code arrays, on single attributes of
a :class:`~repro.data.dataset.CategoricalDataset`, and on whole datasets (one
matrix per attribute).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import DataError, RRMatrixError
from repro.rr.matrix import RRMatrix
from repro.types import SeedLike, as_rng


@dataclass(frozen=True)
class RandomizedResponse:
    """Disguise mechanism for a single categorical attribute.

    Parameters
    ----------
    matrix:
        The RR matrix used for disguising.
    """

    matrix: RRMatrix

    @property
    def n_categories(self) -> int:
        """Domain size handled by this mechanism."""
        return self.matrix.n_categories

    def randomize_codes(self, codes: np.ndarray, seed: SeedLike = None) -> np.ndarray:
        """Disguise an integer-coded value array.

        Each input code ``i`` is replaced by a draw from column ``i`` of the
        RR matrix.  The operation is vectorised with the inverse-CDF trick so
        disguising 10^6 records takes milliseconds.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 1:
            raise DataError(f"codes must be one-dimensional, got shape {codes.shape}")
        if codes.size == 0:
            raise DataError("codes must not be empty")
        if codes.min() < 0 or codes.max() >= self.n_categories:
            raise DataError(
                f"codes must lie in [0, {self.n_categories}), "
                f"got range [{codes.min()}, {codes.max()}]"
            )
        rng = as_rng(seed)
        # Cumulative distribution of each column; cdf[:, i] is the CDF of the
        # report distribution for true value c_i.
        cdf = np.cumsum(self.matrix.probabilities, axis=0)
        cdf[-1, :] = 1.0
        uniforms = rng.random(codes.size)
        # For record r with true code codes[r], find the first row j with
        # cdf[j, codes[r]] >= uniforms[r].
        column_cdfs = cdf[:, codes]  # shape (n, N)
        return (uniforms[None, :] > column_cdfs).sum(axis=0).astype(np.int64)

    def randomize_attribute(
        self,
        dataset: CategoricalDataset,
        attribute: str,
        seed: SeedLike = None,
    ) -> CategoricalDataset:
        """Return a copy of ``dataset`` with ``attribute`` disguised."""
        metadata = dataset.attribute(attribute)
        if metadata.n_categories != self.n_categories:
            raise RRMatrixError(
                f"attribute {attribute!r} has {metadata.n_categories} categories "
                f"but the RR matrix is {self.n_categories}x{self.n_categories}"
            )
        disguised = self.randomize_codes(dataset.column(attribute), seed=seed)
        return dataset.with_column(attribute, disguised)

    def expected_disguised_distribution(self, prior: np.ndarray) -> np.ndarray:
        """Return ``P* = M P`` for a prior ``P`` (Eq. 1)."""
        return self.matrix.disguise_distribution(prior)


def randomize_dataset(
    dataset: CategoricalDataset,
    matrices: dict[str, RRMatrix],
    seed: SeedLike = None,
) -> CategoricalDataset:
    """Disguise several attributes of ``dataset`` (one RR matrix each).

    Attributes without a matrix are left untouched.  This is the
    one-dimensional-RR-per-attribute setting the paper focuses on.
    """
    rng = as_rng(seed)
    result = dataset
    for attribute, matrix in matrices.items():
        mechanism = RandomizedResponse(matrix)
        result = mechanism.randomize_attribute(result, attribute, seed=rng)
    return result
