"""Bridging randomized response and local differential privacy (LDP).

The paper predates the differential-privacy formulation, but its RR matrices
are exactly the mechanisms studied today under *local differential privacy*:
a column-stochastic matrix ``M`` satisfies ``epsilon``-LDP when

``M[y, x] <= exp(epsilon) * M[y, x']``  for every report ``y`` and every pair
of inputs ``x, x'``.

This module provides that modern lens on the paper's objects:

* :func:`ldp_epsilon` — the smallest ``epsilon`` a matrix satisfies;
* :func:`satisfies_ldp` — check a matrix against a target ``epsilon``;
* :func:`k_rr_matrix` — the optimal-utility ``epsilon``-LDP mechanism
  (k-ary randomized response), which coincides with the Warner scheme at
  ``p = e^eps / (e^eps + n - 1)``;
* :func:`epsilon_for_delta_bound` — translate the paper's worst-case
  posterior bound ``delta`` (Eq. 9) into the ``epsilon`` that guarantees it
  for a given prior, and vice versa.

The translation lets users state privacy requirements in whichever currency
they prefer and still use the OptRR optimizer.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError
from repro.rr.matrix import RRMatrix
from repro.rr.schemes import warner_matrix
from repro.utils.validation import check_in_unit_interval, check_positive_int, check_probability_vector

#: Probabilities below this value are treated as zero when computing epsilon;
#: a true zero entry makes the likelihood ratio (and epsilon) infinite.
_ZERO_TOLERANCE = 1e-15


def ldp_epsilon(matrix: RRMatrix) -> float:
    """The smallest ``epsilon`` such that ``matrix`` satisfies epsilon-LDP.

    Returns ``inf`` when some report has zero probability under one input but
    positive probability under another (the likelihood ratio is unbounded).
    """
    probabilities = matrix.probabilities
    worst = 0.0
    for row in probabilities:
        positive = row > _ZERO_TOLERANCE
        if not np.any(positive):
            continue
        if not np.all(positive):
            return float("inf")
        ratio = float(row.max() / row.min())
        worst = max(worst, ratio)
    return math.log(worst) if worst > 0 else 0.0


def satisfies_ldp(matrix: RRMatrix, epsilon: float, *, atol: float = 1e-9) -> bool:
    """Whether ``matrix`` satisfies ``epsilon``-local differential privacy."""
    if epsilon < 0:
        raise ValidationError("epsilon must be non-negative")
    return ldp_epsilon(matrix) <= epsilon + atol


def k_rr_matrix(n_categories: int, epsilon: float) -> RRMatrix:
    """The k-ary randomized response (k-RR) mechanism for ``epsilon``-LDP.

    k-RR keeps the true value with probability
    ``e^eps / (e^eps + n - 1)`` and reports any other value with probability
    ``1 / (e^eps + n - 1)``.  It is exactly the Warner scheme (and, by the
    paper's Theorem 2, the UP and FRAPP schemes) parameterised by epsilon,
    and is the utility-optimal epsilon-LDP mechanism for small domains.
    """
    check_positive_int(n_categories, "n_categories")
    if epsilon < 0 or not np.isfinite(epsilon):
        raise ValidationError(f"epsilon must be a non-negative finite value, got {epsilon}")
    exp_eps = math.exp(epsilon)
    retention = exp_eps / (exp_eps + n_categories - 1)
    return warner_matrix(n_categories, retention)


def epsilon_of_k_rr(n_categories: int, retention: float) -> float:
    """Inverse of :func:`k_rr_matrix`: the epsilon of a Warner/k-RR matrix
    with diagonal ``retention``."""
    check_positive_int(n_categories, "n_categories")
    check_in_unit_interval(retention, "retention")
    off_diagonal = (1.0 - retention) / (n_categories - 1)
    if off_diagonal <= 0:
        return float("inf")
    if retention <= off_diagonal:
        return 0.0 if math.isclose(retention, off_diagonal) else math.log(off_diagonal / retention)
    return math.log(retention / off_diagonal)


def max_posterior_under_ldp(prior: np.ndarray, epsilon: float) -> float:
    """Worst-case posterior (Eq. 9 left-hand side) guaranteed by epsilon-LDP.

    For any epsilon-LDP mechanism, Bayes' rule bounds every posterior by

    ``P(x | y) <= e^eps P(x) / (e^eps P(x) + 1 - P(x))``

    evaluated at the largest prior probability.  The bound is tight for the
    k-RR mechanism in the limit of a dominant prior category.
    """
    prior = check_probability_vector(prior, "prior")
    if epsilon < 0:
        raise ValidationError("epsilon must be non-negative")
    p_max = float(prior.max())
    exp_eps = math.exp(epsilon)
    return exp_eps * p_max / (exp_eps * p_max + 1.0 - p_max)


def epsilon_for_delta_bound(prior: np.ndarray, delta: float) -> float:
    """Largest ``epsilon`` whose LDP guarantee implies the paper's worst-case
    bound ``max P(X | Y) <= delta`` for this prior.

    Solving the posterior bound for epsilon gives
    ``epsilon = log( delta (1 - p_max) / (p_max (1 - delta)) )``.
    By Theorem 5 the bound is only satisfiable when ``delta >= p_max``; a
    ``delta`` below that raises :class:`ValidationError`.
    """
    prior = check_probability_vector(prior, "prior")
    check_in_unit_interval(delta, "delta", inclusive_low=False, inclusive_high=False)
    p_max = float(prior.max())
    if delta < p_max:
        raise ValidationError(
            f"delta={delta} is below the largest prior probability {p_max:.6f}; "
            "no mechanism can satisfy it (Theorem 5)"
        )
    return math.log(delta * (1.0 - p_max) / (p_max * (1.0 - delta)))
