"""Parametric RR scheme families.

The baseline in the paper's evaluation sweeps the Warner retention
probability ``p`` from 0 to 1 in steps of 0.001 (1001 matrices), evaluates
privacy and utility for each, removes dominated solutions and plots the
resulting Pareto front.  A :class:`SchemeFamily` encapsulates such a sweep for
each of the three classic schemes so the baseline front is one call away.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.rr.matrix import RRMatrix
from repro.rr.schemes import frapp_matrix, uniform_perturbation_matrix, warner_matrix
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class SchemeFamily(ABC):
    """A one-parameter family of RR matrices.

    Sub-classes provide the parameter grid and the matrix constructor; the
    base class offers iteration and materialisation helpers.
    """

    n_categories: int

    def __post_init__(self) -> None:
        check_positive_int(self.n_categories, "n_categories")
        if self.n_categories < 2:
            raise ValidationError("scheme families need at least two categories")

    @property
    @abstractmethod
    def name(self) -> str:
        """Human-readable family name."""

    @abstractmethod
    def parameter_grid(self, n_points: int) -> np.ndarray:
        """Return ``n_points`` parameter values covering the family."""

    @abstractmethod
    def matrix(self, parameter: float) -> RRMatrix:
        """Construct the family member for ``parameter``."""

    def matrices(self, n_points: int = 1001) -> list[RRMatrix]:
        """Materialise the family on an ``n_points`` grid (default matches the
        paper's 1001-step Warner sweep)."""
        return [self.matrix(value) for value in self.parameter_grid(n_points)]

    def __iter__(self) -> Iterator[RRMatrix]:
        return iter(self.matrices())


@dataclass(frozen=True)
class WarnerFamily(SchemeFamily):
    """Warner matrices swept over the retention probability ``p``."""

    @property
    def name(self) -> str:
        return "warner"

    def parameter_grid(self, n_points: int) -> np.ndarray:
        check_positive_int(n_points, "n_points")
        return np.linspace(0.0, 1.0, n_points)

    def matrix(self, parameter: float) -> RRMatrix:
        return warner_matrix(self.n_categories, parameter)


@dataclass(frozen=True)
class UniformPerturbationFamily(SchemeFamily):
    """Uniform Perturbation matrices swept over the retention probability
    ``q``."""

    @property
    def name(self) -> str:
        return "uniform-perturbation"

    def parameter_grid(self, n_points: int) -> np.ndarray:
        check_positive_int(n_points, "n_points")
        return np.linspace(0.0, 1.0, n_points)

    def matrix(self, parameter: float) -> RRMatrix:
        return uniform_perturbation_matrix(self.n_categories, parameter)


@dataclass(frozen=True)
class FrappFamily(SchemeFamily):
    """FRAPP matrices swept over the amplification parameter ``gamma``.

    The grid is chosen so that the induced diagonal value covers the same
    ``[1/n, 1]`` range as the Warner sweep: ``gamma = 1`` is total
    randomization and large ``gamma`` approaches the identity.
    """

    #: Largest gamma included in the sweep; the induced diagonal is
    #: ``gamma_max / (gamma_max + n - 1)`` which is close to 1.
    gamma_max: float = 1e4

    @property
    def name(self) -> str:
        return "frapp"

    def parameter_grid(self, n_points: int) -> np.ndarray:
        check_positive_int(n_points, "n_points")
        # Sample uniformly in the induced diagonal value, then map back to
        # gamma, so the front is sampled as densely as the Warner sweep.
        n = self.n_categories
        diagonal_max = self.gamma_max / (self.gamma_max + n - 1)
        diagonals = np.linspace(1.0 / n, diagonal_max, n_points)
        diagonals = np.clip(diagonals, 1.0 / n, 1.0 - 1e-12)
        return diagonals * (n - 1) / (1.0 - diagonals)

    def matrix(self, parameter: float) -> RRMatrix:
        return frapp_matrix(self.n_categories, parameter)


_FAMILIES = {
    "warner": WarnerFamily,
    "uniform-perturbation": UniformPerturbationFamily,
    "up": UniformPerturbationFamily,
    "frapp": FrappFamily,
}


def scheme_family(name: str, n_categories: int) -> SchemeFamily:
    """Look up a scheme family by name (``warner``, ``up``, ``frapp``)."""
    try:
        factory = _FAMILIES[name.lower()]
    except KeyError as exc:
        raise ValidationError(
            f"unknown scheme family {name!r}; available: {sorted(set(_FAMILIES))}"
        ) from exc
    return factory(n_categories)


def family_names() -> Sequence[str]:
    """Canonical names of the available families."""
    return ("warner", "uniform-perturbation", "frapp")
