"""Multi-dimensional randomized response (the paper's future-work extension).

The paper applies RR to each attribute independently and notes that extending
the optimization to multi-dimensional RR is future work.  This module provides
the substrate for that extension: when ``k`` attributes are disguised
independently with matrices ``M_1 ... M_k``, the joint domain is the Cartesian
product of the attribute domains and the effective joint RR matrix is the
Kronecker product ``M_1 ⊗ ... ⊗ M_k``.  The joint original distribution can
then be estimated from the joint disguised distribution exactly as in the
one-dimensional case.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import DataError, RRMatrixError
from repro.rr.estimation import DistributionEstimate, InversionEstimator, IterativeEstimator
from repro.rr.matrix import RRMatrix
from repro.rr.randomize import RandomizedResponse
from repro.types import SeedLike, as_rng


@dataclass(frozen=True)
class MultiDimensionalRR:
    """Independent per-attribute randomized response over several attributes.

    Parameters
    ----------
    attribute_names:
        Names of the disguised attributes, in joint-encoding order.
    matrices:
        One RR matrix per attribute (same order).
    """

    attribute_names: tuple[str, ...]
    matrices: tuple[RRMatrix, ...]

    def __post_init__(self) -> None:
        names = tuple(self.attribute_names)
        matrices = tuple(self.matrices)
        if not names:
            raise DataError("at least one attribute is required")
        if len(names) != len(matrices):
            raise DataError("attribute_names and matrices must have equal length")
        if len(set(names)) != len(names):
            raise DataError("attribute names must be unique")
        object.__setattr__(self, "attribute_names", names)
        object.__setattr__(self, "matrices", matrices)

    # -- joint-domain helpers ------------------------------------------------
    @property
    def domain_sizes(self) -> tuple[int, ...]:
        """Per-attribute domain sizes."""
        return tuple(matrix.n_categories for matrix in self.matrices)

    @property
    def joint_domain_size(self) -> int:
        """Size of the joint (product) domain."""
        return int(np.prod(self.domain_sizes))

    def joint_matrix(self) -> RRMatrix:
        """The joint RR matrix, i.e. the Kronecker product of the per-attribute
        matrices.  Only materialise this for small joint domains."""
        if self.joint_domain_size > 4096:
            raise RRMatrixError(
                f"joint domain of size {self.joint_domain_size} is too large to "
                "materialise explicitly; estimate marginals per attribute instead"
            )
        joint = reduce(np.kron, (matrix.probabilities for matrix in self.matrices))
        return RRMatrix(joint)

    def encode_joint(self, dataset: CategoricalDataset) -> np.ndarray:
        """Encode the selected attributes of ``dataset`` into joint codes
        (mixed-radix, first attribute most significant)."""
        columns = [dataset.column(name) for name in self.attribute_names]
        sizes = self.domain_sizes
        for name, column, size in zip(self.attribute_names, columns, sizes):
            if column.max() >= size:
                raise DataError(
                    f"attribute {name!r} contains codes outside the matrix domain"
                )
        codes = np.zeros(dataset.n_records, dtype=np.int64)
        for column, size in zip(columns, sizes):
            codes = codes * size + column
        return codes

    # -- mechanism -------------------------------------------------------------
    def randomize(self, dataset: CategoricalDataset, seed: SeedLike = None) -> CategoricalDataset:
        """Disguise every configured attribute of ``dataset`` independently."""
        rng = as_rng(seed)
        result = dataset
        for name, matrix in zip(self.attribute_names, self.matrices):
            result = RandomizedResponse(matrix).randomize_attribute(result, name, seed=rng)
        return result

    def estimate_joint_distribution(
        self,
        disguised: CategoricalDataset,
        *,
        method: str = "inversion",
    ) -> DistributionEstimate:
        """Estimate the joint original distribution of the configured
        attributes from a disguised dataset."""
        joint_codes = self.encode_joint(disguised)
        counts = np.bincount(joint_codes, minlength=self.joint_domain_size).astype(np.float64)
        matrix = self.joint_matrix()
        if method == "inversion":
            return InversionEstimator().estimate(counts, matrix)
        if method == "iterative":
            return IterativeEstimator().estimate(counts, matrix)
        raise DataError(f"unknown estimation method {method!r}")

    def estimate_marginals(
        self,
        disguised: CategoricalDataset,
        *,
        method: str = "inversion",
    ) -> dict[str, DistributionEstimate]:
        """Estimate each attribute's marginal distribution independently."""
        estimates: dict[str, DistributionEstimate] = {}
        for name, matrix in zip(self.attribute_names, self.matrices):
            codes = disguised.column(name)
            counts = np.bincount(codes, minlength=matrix.n_categories).astype(np.float64)
            if method == "inversion":
                estimates[name] = InversionEstimator().estimate(counts, matrix)
            elif method == "iterative":
                estimates[name] = IterativeEstimator().estimate(counts, matrix)
            else:
                raise DataError(f"unknown estimation method {method!r}")
        return estimates


def joint_distribution_from_marginals(marginals: Sequence[np.ndarray]) -> np.ndarray:
    """Outer-product joint distribution of independent per-attribute marginals
    (useful for constructing ground truth in tests and examples)."""
    if not marginals:
        raise DataError("at least one marginal is required")
    joint = np.asarray(marginals[0], dtype=np.float64)
    for marginal in marginals[1:]:
        joint = np.outer(joint, np.asarray(marginal, dtype=np.float64)).ravel()
    return joint
