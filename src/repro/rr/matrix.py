"""The randomized-response (RR) matrix abstraction.

An RR matrix ``M`` for a domain of ``n`` categories is an ``n x n``
column-stochastic matrix whose entry ``M[j, i]`` (the paper's ``theta_{j,i}``)
is the probability that an original value ``c_i`` is reported as ``c_j``.
Columns therefore sum to one.  The disguised distribution is ``P* = M P``
(Eq. 1 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import RRMatrixError
from repro.types import MatrixLike, SeedLike, as_rng
from repro.utils.linalg import condition_number, is_invertible, safe_inverse
from repro.utils.validation import (
    check_matrix_stack,
    check_positive_int,
    check_stochastic_columns,
)


@dataclass(frozen=True)
class RRMatrix:
    """A validated column-stochastic randomized-response matrix.

    Parameters
    ----------
    probabilities:
        Square array with ``probabilities[j, i] = P(report c_j | true c_i)``.

    Notes
    -----
    The object is immutable; operators that modify matrices (crossover,
    mutation, repair) return new instances.  The inverse is computed lazily
    and cached because the closed-form utility metric (Theorem 6) needs
    ``M^-1`` for every candidate matrix evaluated by the optimizer.
    """

    probabilities: np.ndarray
    _inverse_cache: list = field(default_factory=list, repr=False, compare=False)

    def __post_init__(self) -> None:
        matrix = check_stochastic_columns(self.probabilities, "RR matrix")
        matrix = matrix.copy()
        matrix.flags.writeable = False
        object.__setattr__(self, "probabilities", matrix)

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: MatrixLike) -> "RRMatrix":
        """Build an RR matrix from a row-major nested sequence."""
        return cls(np.asarray(rows, dtype=np.float64))

    @classmethod
    def from_validated(cls, probabilities: np.ndarray) -> "RRMatrix":
        """Wrap an already-validated column-stochastic array without re-checking.

        This is the trusted fast path for arrays produced *inside* the
        optimization engine (the batched operators and the bound repair only
        emit column-stochastic matrices), where re-running the ``allclose``
        validation per matrix would put object construction back on the hot
        path.  The array is still copied and frozen, so the instance owns
        immutable storage.  Use the regular constructor for untrusted input.
        """
        matrix = np.array(probabilities, dtype=np.float64)
        matrix.flags.writeable = False
        instance = object.__new__(cls)
        object.__setattr__(instance, "probabilities", matrix)
        object.__setattr__(instance, "_inverse_cache", [])
        return instance

    @classmethod
    def identity(cls, n_categories: int) -> "RRMatrix":
        """The identity matrix: no disguise at all (worst privacy, best
        utility; the paper's ``M1`` example)."""
        check_positive_int(n_categories, "n_categories")
        return cls(np.eye(n_categories))

    @classmethod
    def uniform(cls, n_categories: int) -> "RRMatrix":
        """The total-randomization matrix: every value is replaced by a
        uniformly random category (best privacy, worst utility; the paper's
        ``M2`` example)."""
        check_positive_int(n_categories, "n_categories")
        return cls(np.full((n_categories, n_categories), 1.0 / n_categories))

    # -- protocol ----------------------------------------------------------
    @property
    def n_categories(self) -> int:
        """Domain size ``n``."""
        return int(self.probabilities.shape[0])

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the underlying array."""
        return tuple(self.probabilities.shape)  # type: ignore[return-value]

    def as_array(self) -> np.ndarray:
        """Return a writable copy of the probability array."""
        return np.array(self.probabilities, copy=True)

    def __getitem__(self, index) -> float | np.ndarray:
        return self.probabilities[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RRMatrix):
            return NotImplemented
        return bool(np.array_equal(self.probabilities, other.probabilities))

    def __hash__(self) -> int:
        return hash(self.probabilities.tobytes())

    def isclose(self, other: "RRMatrix", *, atol: float = 1e-9) -> bool:
        """Return True when both matrices are element-wise close."""
        if self.n_categories != other.n_categories:
            return False
        return bool(np.allclose(self.probabilities, other.probabilities, atol=atol))

    # -- linear algebra ----------------------------------------------------
    @property
    def is_invertible(self) -> bool:
        """Whether the matrix can be inverted for the inversion estimator."""
        return is_invertible(self.probabilities)

    @property
    def condition(self) -> float:
        """2-norm condition number of the matrix."""
        return condition_number(self.probabilities)

    def inverse(self) -> np.ndarray:
        """Return ``M^-1`` (cached), raising ``SingularMatrixError`` when the
        matrix is not invertible."""
        if not self._inverse_cache:
            self._inverse_cache.append(safe_inverse(self.probabilities))
        return self._inverse_cache[0]

    def disguise_distribution(self, prior: np.ndarray) -> np.ndarray:
        """Return the disguised distribution ``P* = M P`` for prior ``P``."""
        prior = np.asarray(prior, dtype=np.float64)
        if prior.shape != (self.n_categories,):
            raise RRMatrixError(
                f"prior must have shape ({self.n_categories},), got {prior.shape}"
            )
        return self.probabilities @ prior

    # -- parameters for the optimizer ---------------------------------------
    def column(self, index: int) -> np.ndarray:
        """Return a copy of column ``index`` (the distribution of the report
        for true value ``c_{index}``)."""
        return np.array(self.probabilities[:, index], copy=True)

    def replace_column(self, index: int, column: np.ndarray) -> "RRMatrix":
        """Return a new matrix with column ``index`` replaced."""
        matrix = self.as_array()
        matrix[:, index] = column
        return RRMatrix(matrix)

    def diagonal(self) -> np.ndarray:
        """Return a copy of the diagonal (the retention probabilities)."""
        return np.array(np.diag(self.probabilities), copy=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RRMatrix(n={self.n_categories})"


def stack_matrices(matrices: "list[RRMatrix] | tuple[RRMatrix, ...]") -> np.ndarray:
    """Stack a sequence of same-domain RR matrices into a ``(B, n, n)`` array.

    The batch-evaluation engine and the batched variation operators work on
    stacked arrays; this is the boundary where ``RRMatrix`` objects enter the
    vectorized world.
    """
    if not matrices:
        raise RRMatrixError("cannot stack an empty sequence of matrices")
    n = matrices[0].n_categories
    for matrix in matrices:
        if matrix.n_categories != n:
            raise RRMatrixError(
                f"cannot stack matrices with mixed domains ({matrix.n_categories} != {n})"
            )
    return np.stack([matrix.probabilities for matrix in matrices])


def unstack_matrices(stack: np.ndarray) -> list[RRMatrix]:
    """Turn a ``(B, n, n)`` array back into validated :class:`RRMatrix`
    objects (the inverse of :func:`stack_matrices`)."""
    return [RRMatrix(matrix) for matrix in check_matrix_stack(stack)]


def as_matrix_stack(matrices: "np.ndarray | list[RRMatrix]") -> np.ndarray:
    """Accept either a ``(B, n, n)`` array or a list of :class:`RRMatrix` and
    return the stacked array (copying only in the list case)."""
    if isinstance(matrices, np.ndarray):
        return check_matrix_stack(matrices)
    return stack_matrices(list(matrices))


def random_rr_matrix(
    n_categories: int,
    seed: SeedLike = None,
    *,
    diagonal_bias: float = 0.0,
) -> RRMatrix:
    """Generate a random column-stochastic RR matrix.

    Each column is drawn from a flat Dirichlet distribution.  A positive
    ``diagonal_bias`` adds mass to the diagonal before renormalising, which
    produces matrices closer to the identity; the optimizer's initial
    population mixes unbiased and diagonally-biased matrices so the starting
    front spans a wide privacy range.
    """
    check_positive_int(n_categories, "n_categories")
    if diagonal_bias < 0:
        raise RRMatrixError("diagonal_bias must be non-negative")
    rng = as_rng(seed)
    matrix = rng.dirichlet(np.ones(n_categories), size=n_categories).T
    if diagonal_bias > 0:
        matrix = matrix + diagonal_bias * np.eye(n_categories)
        matrix = matrix / matrix.sum(axis=0, keepdims=True)
    return RRMatrix(matrix)
