"""Classic randomized-response scheme constructors.

Section III-B of the paper describes three existing RR matrix families:

* **Warner** — diagonal ``p``, off-diagonal ``(1 - p) / (n - 1)``.
* **Uniform Perturbation (UP)** — retain with probability ``q``, otherwise
  replace with a uniformly random category: diagonal ``q + (1 - q) / n``,
  off-diagonal ``(1 - q) / n``.
* **FRAPP** — diagonal ``lambda / (lambda + n - 1)``, off-diagonal
  ``1 / (lambda + n - 1)``.

Theorem 2 states that the three families generate the identical solution set;
:func:`repro.rr.family.scheme_family` and the tests verify the equivalence.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import RRMatrixError
from repro.rr.matrix import RRMatrix
from repro.utils.validation import check_in_unit_interval, check_positive_int


def identity_matrix(n_categories: int) -> RRMatrix:
    """The no-disguise matrix (the paper's ``M1`` example)."""
    return RRMatrix.identity(n_categories)


def total_randomization_matrix(n_categories: int) -> RRMatrix:
    """The full-randomization matrix (the paper's ``M2`` example)."""
    return RRMatrix.uniform(n_categories)


def warner_matrix(n_categories: int, p: float) -> RRMatrix:
    """Warner scheme matrix with retention probability ``p``.

    ``p = 1`` yields the identity matrix; ``p = 1 / n`` yields the total
    randomization matrix.
    """
    check_positive_int(n_categories, "n_categories")
    check_in_unit_interval(p, "p")
    if n_categories == 1:
        raise RRMatrixError("Warner scheme needs at least two categories")
    off_diagonal = (1.0 - p) / (n_categories - 1)
    matrix = np.full((n_categories, n_categories), off_diagonal)
    np.fill_diagonal(matrix, p)
    return RRMatrix(matrix)


def uniform_perturbation_matrix(n_categories: int, q: float) -> RRMatrix:
    """Uniform Perturbation (UP) matrix with retention probability ``q``.

    Each value is kept with probability ``q`` and otherwise replaced by a
    category drawn uniformly from the whole domain (including itself), giving
    diagonal ``q + (1 - q) / n`` and off-diagonal ``(1 - q) / n``.
    """
    check_positive_int(n_categories, "n_categories")
    check_in_unit_interval(q, "q")
    off_diagonal = (1.0 - q) / n_categories
    matrix = np.full((n_categories, n_categories), off_diagonal)
    np.fill_diagonal(matrix, q + off_diagonal)
    return RRMatrix(matrix)


def frapp_matrix(n_categories: int, gamma: float) -> RRMatrix:
    """FRAPP matrix with amplification parameter ``gamma`` (the paper's
    ``lambda``): diagonal ``gamma / (gamma + n - 1)``, off-diagonal
    ``1 / (gamma + n - 1)``.

    ``gamma`` must be positive; ``gamma = 1`` gives total randomization and
    ``gamma -> inf`` approaches the identity matrix.
    """
    check_positive_int(n_categories, "n_categories")
    if gamma <= 0 or not np.isfinite(gamma):
        raise RRMatrixError(f"gamma must be a positive finite value, got {gamma}")
    denominator = gamma + n_categories - 1
    matrix = np.full((n_categories, n_categories), 1.0 / denominator)
    np.fill_diagonal(matrix, gamma / denominator)
    return RRMatrix(matrix)


def warner_equivalent_p(n_categories: int, *, q: float | None = None, gamma: float | None = None) -> float:
    """Map a UP parameter ``q`` or FRAPP parameter ``gamma`` to the Warner
    retention probability ``p`` that produces the identical matrix.

    This is the constructive form of Theorem 2: the three families are
    reparameterisations of the symmetric matrices with constant off-diagonal.
    """
    check_positive_int(n_categories, "n_categories")
    if (q is None) == (gamma is None):
        raise RRMatrixError("provide exactly one of q or gamma")
    if q is not None:
        check_in_unit_interval(q, "q")
        return q + (1.0 - q) / n_categories
    assert gamma is not None
    if gamma <= 0:
        raise RRMatrixError("gamma must be positive")
    return gamma / (gamma + n_categories - 1)
