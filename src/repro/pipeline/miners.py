"""Miner registry for the downstream-mining pipeline.

A *miner* measures how much of one data-mining task survives the RR
disguise: it receives the clean workload, the disguised dataset and the RR
matrix the disguise used, runs the task on the disguised data (reconstructing
distributions where needed), runs the same task on the clean data as the
reference, and returns a flat ``{metric: float}`` mapping.

Three miners ship with the library:

``tree``
    Decision-tree accuracy (Du & Zhan-style reconstruction-based splits):
    a tree built from the disguised data is scored on the original records
    against a tree built from the clean data.
``rules``
    Association-rule precision/recall at a support threshold: the rule set
    mined from the disguised data is compared against the clean rule set.
``distribution``
    Distribution reconstruction error: L1/L2/MSE distance between the
    reconstructed sensitive-attribute distribution and the clean sample
    distribution.

Adding a miner is one :func:`register_miner` call — see ``docs/pipeline.md``.
Every miner must be **deterministic**: its metrics may depend only on its
inputs (the pipeline's caching and cross-worker byte-determinism guarantees
rely on this), so a miner must not draw from any global random source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.data.workload import (
    CLASS_ATTRIBUTE,
    CONTEXT_ATTRIBUTE,
    SENSITIVE_ATTRIBUTE,
    MiningWorkload,
)
from repro.data.dataset import CategoricalDataset
from repro.exceptions import ValidationError
from repro.mining.association import AssociationMiner, AssociationRule
from repro.mining.decision_tree import DecisionTreeBuilder
from repro.rr.estimation import estimate_distribution
from repro.rr.matrix import RRMatrix

#: Signature of a miner implementation.
MinerFunction = Callable[
    [MiningWorkload, CategoricalDataset, RRMatrix, Mapping[str, Any]],
    dict[str, float],
]


@dataclass(frozen=True)
class Miner:
    """One registered miner: its name, implementation and default parameters."""

    name: str
    description: str
    run: MinerFunction
    default_params: tuple[tuple[str, Any], ...] = ()

    def effective_params(self, overrides: Mapping[str, Any] | None) -> dict[str, Any]:
        """Default parameters merged with ``overrides``.

        Unknown keys and values that cannot be coerced to the default's type
        raise :class:`ValidationError` (so CLI misuse surfaces as a usage
        error, never a traceback).
        """
        params = dict(self.default_params)
        for key, value in (overrides or {}).items():
            if key not in params:
                raise ValidationError(
                    f"miner {self.name!r} does not accept parameter {key!r}; "
                    f"accepted: {sorted(params) or '(none)'}"
                )
            try:
                params[key] = type(params[key])(value)
            except (TypeError, ValueError) as exc:
                raise ValidationError(
                    f"miner {self.name!r} parameter {key!r} expects a "
                    f"{type(params[key]).__name__}, got {value!r}"
                ) from exc
        return params


_MINERS: dict[str, Miner] = {}

#: Alias → canonical miner name.
_ALIASES = {"dist": "distribution", "tree": "tree", "rules": "rules"}


def register_miner(miner: Miner) -> Miner:
    """Register a miner (name must be unique)."""
    if miner.name in _MINERS:
        raise ValidationError(f"miner {miner.name!r} is already registered")
    _MINERS[miner.name] = miner
    return miner


def get_miner(name: str) -> Miner:
    """Look up a miner by name or alias."""
    canonical = _ALIASES.get(name, name)
    try:
        return _MINERS[canonical]
    except KeyError as exc:
        raise ValidationError(
            f"unknown miner {name!r}; available: {sorted(_MINERS)}"
        ) from exc


def available_miners() -> tuple[str, ...]:
    """Names of all registered miners, sorted."""
    return tuple(sorted(_MINERS))


# -- the built-in miners -----------------------------------------------------

#: Per-process memo of clean-reference computations.  The clean baseline of a
#: miner depends only on the workload and the miner parameters — not on the
#: scheme — so a pipeline sweeping S schemes would otherwise recompute the
#: identical clean tree/rule set S times per (seed, miner).  The values are
#: pure functions of their key, so memoization cannot affect determinism.
_CLEAN_BASELINE_CACHE: dict[tuple, Any] = {}
_CLEAN_BASELINE_CACHE_LIMIT = 64


def _clean_baseline(key: tuple, compute: Callable[[], Any]) -> Any:
    if key not in _CLEAN_BASELINE_CACHE:
        if len(_CLEAN_BASELINE_CACHE) >= _CLEAN_BASELINE_CACHE_LIMIT:
            _CLEAN_BASELINE_CACHE.clear()
        _CLEAN_BASELINE_CACHE[key] = compute()
    return _CLEAN_BASELINE_CACHE[key]


def _workload_key(workload: MiningWorkload) -> tuple:
    return (workload.data, workload.n_categories, workload.n_records, workload.seed)


def _predict_accuracy(tree, dataset: CategoricalDataset) -> float:
    """Accuracy of ``tree`` on the (clean) records of ``dataset``."""
    names = dataset.attribute_names
    truth = dataset.column(CLASS_ATTRIBUTE)
    predictions = np.fromiter(
        (tree.predict_one(dict(zip(names, row))) for row in dataset.records),
        dtype=np.int64,
        count=dataset.n_records,
    )
    return float(np.mean(predictions == truth))


def _run_tree_miner(
    workload: MiningWorkload,
    disguised: CategoricalDataset,
    matrix: RRMatrix,
    params: Mapping[str, Any],
) -> dict[str, float]:
    builder_options = dict(
        class_attribute=CLASS_ATTRIBUTE,
        max_depth=int(params["max_depth"]),
        min_information_gain=float(params["min_information_gain"]),
    )
    candidates = [SENSITIVE_ATTRIBUTE, CONTEXT_ATTRIBUTE]

    def compute_clean_reference() -> tuple[float, float]:
        clean_tree = DecisionTreeBuilder({}, **builder_options).build(
            workload.dataset, candidates
        )
        truth = workload.dataset.column(CLASS_ATTRIBUTE)
        return (
            _predict_accuracy(clean_tree, workload.dataset),
            float(max(np.mean(truth == code) for code in (0, 1))),
        )

    clean_accuracy, majority = _clean_baseline(
        ("tree", *_workload_key(workload), *sorted(builder_options.items())),
        compute_clean_reference,
    )
    disguised_tree = DecisionTreeBuilder(
        {SENSITIVE_ATTRIBUTE: matrix}, **builder_options
    ).build(disguised, candidates)
    # Both trees are scored on the original records: the question is how much
    # *classification* utility the reconstruction preserved, so the test set
    # must be identical for both.
    accuracy = _predict_accuracy(disguised_tree, workload.dataset)
    return {
        "accuracy": accuracy,
        "clean_accuracy": clean_accuracy,
        "accuracy_ratio": accuracy / clean_accuracy if clean_accuracy > 0 else 0.0,
        "majority_baseline": majority,
        "n_nodes": float(disguised_tree.count_nodes()),
    }


def _rule_key(rule: AssociationRule) -> tuple:
    return (rule.antecedent, rule.consequent)


def _run_rules_miner(
    workload: MiningWorkload,
    disguised: CategoricalDataset,
    matrix: RRMatrix,
    params: Mapping[str, Any],
) -> dict[str, float]:
    miner_options = dict(
        min_support=float(params["min_support"]),
        min_confidence=float(params["min_confidence"]),
        max_itemset_size=int(params["max_itemset_size"]),
    )
    attributes = (SENSITIVE_ATTRIBUTE, CONTEXT_ATTRIBUTE, CLASS_ATTRIBUTE)

    def compute_clean_rule_keys() -> frozenset:
        clean_rules = AssociationMiner({}, **miner_options).mine_rules(
            workload.dataset, attributes
        )
        return frozenset(_rule_key(rule) for rule in clean_rules)

    clean_keys = _clean_baseline(
        ("rules", *_workload_key(workload), *sorted(miner_options.items())),
        compute_clean_rule_keys,
    )
    disguised_rules = AssociationMiner(
        {SENSITIVE_ATTRIBUTE: matrix}, **miner_options
    ).mine_rules(disguised, attributes)
    mined_keys = {_rule_key(rule) for rule in disguised_rules}
    hits = len(clean_keys & mined_keys)
    precision = hits / len(mined_keys) if mined_keys else 1.0
    recall = hits / len(clean_keys) if clean_keys else 1.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return {
        "precision": float(precision),
        "recall": float(recall),
        "f1": float(f1),
        "n_rules": float(len(mined_keys)),
        "n_clean_rules": float(len(clean_keys)),
    }


def _run_distribution_miner(
    workload: MiningWorkload,
    disguised: CategoricalDataset,
    matrix: RRMatrix,
    params: Mapping[str, Any],
) -> dict[str, float]:
    estimate = estimate_distribution(
        disguised.column(SENSITIVE_ATTRIBUTE), matrix, method=str(params["method"])
    )
    truth = workload.dataset.distribution(SENSITIVE_ATTRIBUTE).probabilities
    errors = estimate.probabilities - truth
    return {
        "l1_error": float(np.abs(errors).sum()),
        "l2_error": float(np.sqrt(np.square(errors).sum())),
        "mse": float(np.mean(np.square(errors))),
    }


register_miner(
    Miner(
        name="tree",
        description="decision-tree accuracy on reconstructed splits vs a clean-trained tree",
        run=_run_tree_miner,
        default_params=(("max_depth", 3), ("min_information_gain", 1e-3)),
    )
)
register_miner(
    Miner(
        name="rules",
        description="association-rule precision/recall at a support threshold",
        run=_run_rules_miner,
        default_params=(
            ("min_support", 0.05),
            ("min_confidence", 0.5),
            ("max_itemset_size", 2),
        ),
    )
)
register_miner(
    Miner(
        name="distribution",
        description="L1/L2/MSE reconstruction error of the sensitive-attribute distribution",
        run=_run_distribution_miner,
        default_params=(("method", "inversion"),),
    )
)
