"""Declarative disguise → reconstruct → mine → score pipelines.

This package closes the paper's end-to-end loop: it takes RR schemes (classic
family members or a whole optimized Pareto front), applies the record-level
disguise to a mining workload, reconstructs the original distributions, runs
downstream miners (decision trees, association rules, distribution error) and
scores each scheme's surviving data-mining utility — fanned out over seeds
through the shared grid executor with content-addressed caching.
"""

from repro.pipeline.miners import Miner, available_miners, get_miner, register_miner
from repro.pipeline.runner import (
    PipelineCache,
    PipelineCellRecord,
    PipelineResult,
    SchemeEvaluation,
    disguise_workload,
    evaluate_schemes,
    run_pipeline,
)
from repro.pipeline.spec import (
    PipelineCellTask,
    PipelineScheme,
    PipelineSpec,
    parse_seed_argument,
    plan_pipeline,
    resolve_scheme_argument,
    schemes_from_front,
)

__all__ = [
    "Miner",
    "PipelineCache",
    "PipelineCellRecord",
    "PipelineCellTask",
    "PipelineResult",
    "PipelineScheme",
    "PipelineSpec",
    "SchemeEvaluation",
    "available_miners",
    "disguise_workload",
    "evaluate_schemes",
    "get_miner",
    "parse_seed_argument",
    "plan_pipeline",
    "register_miner",
    "resolve_scheme_argument",
    "run_pipeline",
    "schemes_from_front",
]
