"""Execution engine of the downstream-mining pipeline.

:func:`run_pipeline` takes a :class:`~repro.pipeline.spec.PipelineSpec` and
drives the four stages end to end for every ``(scheme, seed, miner)`` cell of
the grid:

1. **disguise** — sample the workload dataset for the seed and randomize its
   sensitive attribute with the scheme's RR matrix;
2. **reconstruct** — estimate original distributions from the disguised data
   (inside the miner, via the contingency/inversion estimators);
3. **mine** — run the miner on the disguised data and on the clean data;
4. **score** — reduce both to the miner's ``{metric: float}`` comparison.

Scheme-level privacy/utility is evaluated once per pipeline through the
batched :class:`~repro.metrics.evaluation.MatrixEvaluator` engine (the whole
scheme stack in one ``(B, n, n)`` call), and the cell grid fans out through
the shared campaign machinery (:mod:`repro.experiments.grid`): a
:class:`~concurrent.futures.ProcessPoolExecutor` when ``n_jobs > 1``, plus a
content-addressed ``pipeline_cell`` document cache.  Results are collected by
grid position and every float round-trips through canonical JSON, so the same
spec yields **byte-identical** result and aggregate documents across worker
counts and cache states.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from repro.data.workload import SENSITIVE_ATTRIBUTE, MiningWorkload, build_workload, resolve_workload_prior
from repro.data.dataset import CategoricalDataset
from repro.exceptions import ValidationError
from repro.experiments.grid import DocumentCache, RetryPolicy, run_grid
from repro.metrics.evaluation import MatrixEvaluator
from repro.pipeline.miners import get_miner
from repro.pipeline.spec import PipelineCellTask, PipelineSpec, matrix_digest
from repro.rr.matrix import RRMatrix, stack_matrices
from repro.rr.randomize import RandomizedResponse

#: Format identifier embedded in pipeline documents.
PIPELINE_FORMAT_VERSION = 1


class PipelineCache(DocumentCache):
    """Content-addressed on-disk store of ``pipeline_cell`` documents."""

    def __init__(self, directory: str | Path) -> None:
        super().__init__(directory, document_type="pipeline_cell")


@dataclass(frozen=True)
class SchemeEvaluation:
    """Batched privacy/utility evaluation of one scheme on the workload prior."""

    scheme: str
    privacy: float
    utility: float
    max_posterior: float
    invertible: bool


@dataclass(frozen=True)
class PipelineCellRecord:
    """One executed pipeline cell: its coordinates, metrics and provenance."""

    scheme: str
    seed: int
    miner: str
    metrics: Mapping[str, float]
    from_cache: bool


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of a whole pipeline run.

    Attributes
    ----------
    spec:
        The pipeline specification that was run.
    evaluations:
        Per-scheme privacy/utility from the batched matrix evaluator, in
        scheme order.
    cells:
        Per-cell records in canonical grid order (schemes outer, seeds
        middle, miners inner) — independent of completion order.  Quarantined
        cells have no record.
    failures:
        ``(scheme, seed, miner)`` coordinates of cells quarantined after
        exhausting their attempts (non-empty only with ``keep_going``).
    failure_manifest:
        Structured retry/quarantine record
        (:meth:`repro.experiments.grid.GridReport.failure_manifest` with
        scheme/seed/miner labels), or ``None`` when nothing failed.
    """

    spec: PipelineSpec
    evaluations: tuple[SchemeEvaluation, ...]
    cells: tuple[PipelineCellRecord, ...]
    failures: tuple[tuple[str, int, str], ...] = ()
    failure_manifest: dict[str, Any] | None = None

    @property
    def complete(self) -> bool:
        """Whether every cell in the grid produced a result."""
        return not self.failures

    @property
    def n_cache_hits(self) -> int:
        """How many cells were replayed from the cache."""
        return sum(1 for cell in self.cells if cell.from_cache)

    def metrics_for(self, scheme: str, miner: str, seed: int) -> Mapping[str, float]:
        """Metrics of one cell (raises when the cell is not in the grid)."""
        for cell in self.cells:
            if cell.scheme == scheme and cell.miner == miner and cell.seed == seed:
                return cell.metrics
        raise ValidationError(
            f"cell (scheme={scheme!r}, miner={miner!r}, seed={seed}) is not part "
            f"of this pipeline"
        )

    def result_document(self) -> dict[str, Any]:
        """The full per-cell table as a JSON-compatible ``pipeline_result``
        document (byte-identical across worker counts and cache states)."""
        from repro.io import pipeline_result_to_dict

        return pipeline_result_to_dict(self)

    def aggregate_document(self) -> dict[str, Any]:
        """Cross-seed aggregation as a ``pipeline_aggregate`` document."""
        from repro.analysis.aggregate import (
            aggregate_pipeline_cells,
            pipeline_aggregate_to_document,
        )

        aggregates = aggregate_pipeline_cells(
            [(cell.scheme, cell.miner, cell.seed, cell.metrics) for cell in self.cells]
        )
        document = pipeline_aggregate_to_document(self, aggregates)
        if self.failure_manifest is not None:
            document = dict(document)
            document["failure_manifest"] = self.failure_manifest
        return document

    def aggregate_json(self) -> str:
        """Canonical JSON text of :meth:`aggregate_document`."""
        from repro.io import dump_canonical_json

        return dump_canonical_json(self.aggregate_document())


def disguise_seed(seed: int, matrix: RRMatrix) -> np.random.Generator:
    """Deterministic RNG for disguising one ``(seed, matrix)`` pair.

    The stream is derived from the seed plus a digest of the full-precision
    matrix entries, so every scheme disguises with an independent stream and
    the same cell always replays the same disguise — regardless of scheme
    order, worker count or which other cells ran before it.
    """
    entropy = int(matrix_digest(matrix)[:16], 16)
    return np.random.default_rng(np.random.SeedSequence([int(seed), entropy]))


def disguise_workload(workload: MiningWorkload, matrix: RRMatrix) -> CategoricalDataset:
    """Randomize the workload's sensitive attribute with ``matrix``."""
    mechanism = RandomizedResponse(matrix)
    return mechanism.randomize_attribute(
        workload.dataset, SENSITIVE_ATTRIBUTE, seed=disguise_seed(workload.seed, matrix)
    )


#: Per-worker memo of built+disguised workloads.  The grid fans the M miner
#: cells of one (scheme, seed) out as independent tasks, each of which used to
#: rebuild and re-disguise the identical workload; since the disguise stream
#: is a pure function of (seed, matrix digest) — see :func:`disguise_seed` —
#: the pair can be computed once per worker and shared.  Miners only read the
#: datasets, and cache keys/documents are untouched, so aggregates stay
#: byte-identical across worker counts and memo states.  Bounded FIFO so a
#: long campaign cannot grow worker memory without limit.
_DISGUISE_MEMO: dict[tuple, tuple[MiningWorkload, CategoricalDataset]] = {}
_DISGUISE_MEMO_LIMIT = 8


def _memoized_disguise(
    data: str, n_records: int, n_categories: int | None, seed: int, matrix: RRMatrix
) -> tuple[MiningWorkload, CategoricalDataset]:
    """Build and disguise the cell's workload, memoized per worker process."""
    key = (data, int(n_records), n_categories, int(seed), matrix_digest(matrix))
    memo = _DISGUISE_MEMO.get(key)
    if memo is None:
        workload = build_workload(data, n_records, seed, n_categories=n_categories)
        memo = (workload, disguise_workload(workload, matrix))
        if len(_DISGUISE_MEMO) >= _DISGUISE_MEMO_LIMIT:
            _DISGUISE_MEMO.pop(next(iter(_DISGUISE_MEMO)))
        _DISGUISE_MEMO[key] = memo
    return memo


def _execute_cell(payload: tuple) -> dict[str, Any]:
    """Process-pool entry point: run one pipeline cell, return its document.

    Must stay a module-level function (pickled by reference) and must return
    plain JSON-compatible data — shipping the canonical document rather than
    live objects keeps fresh and cached results bit-for-bit interchangeable.
    The cell's backend is activated explicitly (spawn workers do not inherit
    the parent's in-process activation).
    """
    from repro.backend.registry import set_active_backend

    (data, n_records, n_categories, scheme_name, matrix_rows, seed, miner_name,
     param_items, backend) = payload
    set_active_backend(backend)
    matrix = RRMatrix(np.asarray(matrix_rows, dtype=np.float64))
    workload, disguised = _memoized_disguise(
        data, n_records, n_categories, seed, matrix
    )
    miner = get_miner(miner_name)
    metrics = miner.run(workload, disguised, matrix, dict(param_items))
    return {
        "format_version": PIPELINE_FORMAT_VERSION,
        "type": "pipeline_cell",
        "scheme": scheme_name,
        "seed": int(seed),
        "miner": miner_name,
        "metrics": {key: float(value) for key, value in sorted(metrics.items())},
    }


def _cell_payload(task: PipelineCellTask) -> tuple:
    return (
        task.data,
        task.n_records,
        task.n_categories,
        task.scheme.name,
        task.scheme.matrix.probabilities.tolist(),
        task.seed,
        task.miner,
        task.miner_params,
        task.backend,
    )


def _parse_cell_document(document: dict[str, Any]) -> PipelineCellRecord:
    """Deserialize a cell document (raises on structurally invalid input, so
    corrupt cache entries count as misses)."""
    return PipelineCellRecord(
        scheme=str(document["scheme"]),
        seed=int(document["seed"]),
        miner=str(document["miner"]),
        metrics={key: float(value) for key, value in document["metrics"].items()},
        from_cache=False,
    )


def evaluate_schemes(spec: PipelineSpec) -> tuple[SchemeEvaluation, ...]:
    """Evaluate every scheme's privacy/utility in one batched call.

    The whole scheme stack goes through
    :meth:`~repro.metrics.evaluation.MatrixEvaluator.evaluate_batch` as a
    single ``(B, n, n)`` tensor — the same engine the optimizer hot path
    uses — so adding schemes to a pipeline costs one more slice of a batch,
    not one more Python-level evaluation loop.
    """
    prior = resolve_workload_prior(spec.data, spec.n_categories)
    evaluator = MatrixEvaluator(prior, spec.n_records)
    batch = evaluator.evaluate_batch(
        stack_matrices([scheme.matrix for scheme in spec.schemes])
    )
    return tuple(
        SchemeEvaluation(
            scheme=scheme.name,
            privacy=float(batch.privacy[index]),
            utility=float(batch.utility[index]),
            max_posterior=float(batch.max_posterior[index]),
            invertible=bool(batch.invertible[index]),
        )
        for index, scheme in enumerate(spec.schemes)
    )


def run_pipeline(
    spec: PipelineSpec,
    *,
    n_jobs: int = 1,
    cache_dir: str | Path | None = None,
    on_task_done: Callable[[PipelineCellTask, bool], None] | None = None,
    retries: int = 0,
    cell_timeout: float | None = None,
    keep_going: bool = False,
) -> PipelineResult:
    """Run a pipeline grid, in parallel when ``n_jobs > 1``.

    Parameters
    ----------
    spec:
        The pipeline specification (build with
        :func:`~repro.pipeline.spec.plan_pipeline`).
    n_jobs:
        Worker processes; ``1`` runs everything in this process.
    cache_dir:
        Directory of the content-addressed cell cache; ``None`` disables
        caching.
    on_task_done:
        Optional progress callback invoked as ``(task, from_cache)`` when
        each cell finishes (completion order).
    retries:
        Extra attempts granted to each failing cell beyond its first, with
        capped deterministic exponential backoff between attempts.
    cell_timeout:
        Per-attempt wall-clock limit in seconds; a cell exceeding it has its
        worker killed and replaced (forces process isolation even for
        ``n_jobs == 1``).  ``None`` disables the limit.
    keep_going:
        Quarantine cells that exhaust their attempts — recording them in
        ``failures``/``failure_manifest`` — instead of aborting the pipeline
        on its first poison cell.  Off by default: a pipeline is usually
        short enough that fail-fast is the right interactive behaviour.

    Returns
    -------
    PipelineResult
        Cell records in canonical grid order plus batched scheme
        evaluations; non-invertible schemes are rejected up front (their
        miners could not reconstruct anything).
    """
    evaluations = evaluate_schemes(spec)
    singular = [item.scheme for item in evaluations if not item.invertible]
    if singular:
        raise ValidationError(
            f"scheme(s) {singular} are not invertible; the reconstruction "
            f"estimators cannot mine through them"
        )
    if retries < 0:
        raise ValidationError(f"retries must be >= 0, got {retries}")
    tasks = spec.tasks()
    cache = PipelineCache(cache_dir) if cache_dir is not None else None
    report = run_grid(
        payloads=[_cell_payload(task) for task in tasks],
        worker=_execute_cell,
        parse=_parse_cell_document,
        keys=[task.cache_key() for task in tasks],
        cache=cache,
        n_jobs=n_jobs,
        on_task_done=(
            None
            if on_task_done is None
            else lambda index, cached: on_task_done(tasks[index], cached)
        ),
        label="pipeline",
        policy=RetryPolicy(
            max_attempts=retries + 1,
            cell_timeout=cell_timeout,
            keep_going=keep_going,
        ),
    )
    cells = tuple(
        PipelineCellRecord(
            scheme=outcome.value.scheme,
            seed=outcome.value.seed,
            miner=outcome.value.miner,
            metrics=outcome.value.metrics,
            from_cache=outcome.from_cache,
        )
        for outcome in report.outcomes
        if outcome is not None
    )
    return PipelineResult(
        spec=spec,
        evaluations=evaluations,
        cells=cells,
        failures=tuple(
            (tasks[failure.index].scheme.name, tasks[failure.index].seed,
             tasks[failure.index].miner)
            for failure in report.failures
        ),
        failure_manifest=report.failure_manifest(
            describe=lambda index: {
                "scheme": tasks[index].scheme.name,
                "seed": tasks[index].seed,
                "miner": tasks[index].miner,
            }
        ),
    )
