"""Declarative specification of a downstream-mining pipeline.

A pipeline is fully described by a :class:`PipelineSpec`: which dataset, which
RR schemes, which miners, which seeds.  The spec is the unit of determinism —
running the same spec serially, on many workers, or from a warm cache must
produce byte-identical result documents — and the unit of caching: every
``(scheme, seed, miner)`` cell derives a content-addressed key from the spec
fields that affect it (including the package version and the full matrix
entries, so changed inputs can never replay stale results).

Build specs with :func:`plan_pipeline`, which resolves scheme arguments
(``warner:0.8``-style family members, explicit matrix documents, or a whole
optimized Pareto front) against the dataset's domain size and validates every
miner name.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import repro
from repro.backend.registry import active_backend_name
from repro.core.result import OptimizationResult
from repro.data.workload import resolve_workload_prior
from repro.exceptions import ValidationError
from repro.pipeline.miners import get_miner
from repro.rr.family import scheme_family
from repro.rr.matrix import RRMatrix

#: Cache-key prefix; bump when the key derivation itself changes.
#: v2: the array-backend name joined the key (see the campaign cache notes).
PIPELINE_KEY_SCHEMA = "pipeline-cell-v2"

#: Default number of records in the sampled workload dataset.
DEFAULT_N_RECORDS = 20_000


def matrix_digest(matrix: RRMatrix) -> str:
    """SHA-256 of a matrix's full-precision entries.

    The single digest convention shared by the cell cache keys and the
    disguise-stream derivation (:func:`repro.pipeline.runner.disguise_seed`).
    """
    payload = json.dumps(matrix.probabilities.tolist())
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PipelineScheme:
    """One named RR scheme entering the pipeline."""

    name: str
    matrix: RRMatrix = field(repr=False)


@dataclass(frozen=True)
class PipelineCellTask:
    """One cell of the pipeline grid: a scheme, a seed and a miner, plus the
    array backend the cell runs under."""

    data: str
    n_records: int
    n_categories: int | None
    scheme: PipelineScheme
    seed: int
    miner: str
    miner_params: tuple[tuple[str, Any], ...]
    backend: str = "numpy"

    def cache_key(self) -> str:
        """Content-addressed key of this cell (includes the package version
        and the full matrix, so no input change can replay a stale result)."""
        payload = json.dumps(
            {
                "schema": PIPELINE_KEY_SCHEMA,
                "version": repro.__version__,
                "data": self.data,
                "n_records": self.n_records,
                "n_categories": self.n_categories,
                "scheme": self.scheme.name,
                "matrix": self.scheme.matrix.probabilities.tolist(),
                "seed": self.seed,
                "miner": self.miner,
                "miner_params": sorted(self.miner_params),
                "backend": self.backend,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PipelineSpec:
    """Static description of a pipeline run.

    Attributes
    ----------
    data:
        Dataset specification (``adult:<attribute>`` or a synthetic family
        name such as ``normal``).
    n_records:
        Number of records sampled into the workload dataset.
    n_categories:
        Domain size for synthetic priors (None derives the default, and is
        required to be consistent for ``adult:`` data).
    schemes:
        The RR schemes to push through the pipeline, in evaluation order.
    miners:
        Canonical miner names, in evaluation order.
    seeds:
        Seeds the disguise/sampling fan out over.
    miner_params:
        Per-miner effective parameters (defaults merged with overrides),
        stored as sorted items per miner.
    backend:
        Array backend the cells run under (materialized by
        :func:`plan_pipeline` from the active backend; part of every cell's
        cache key).
    """

    data: str
    n_records: int
    n_categories: int | None
    schemes: tuple[PipelineScheme, ...]
    miners: tuple[str, ...]
    seeds: tuple[int, ...]
    miner_params: tuple[tuple[str, tuple[tuple[str, Any], ...]], ...] = ()
    backend: str = "numpy"

    def params_for(self, miner: str) -> dict[str, Any]:
        """Effective parameters of one miner."""
        for name, items in self.miner_params:
            if name == miner:
                return dict(items)
        return {}

    def tasks(self) -> tuple[PipelineCellTask, ...]:
        """The grid in canonical order: schemes outer, seeds middle, miners
        inner."""
        cells = []
        for scheme in self.schemes:
            for seed in self.seeds:
                for miner in self.miners:
                    cells.append(
                        PipelineCellTask(
                            data=self.data,
                            n_records=self.n_records,
                            n_categories=self.n_categories,
                            scheme=scheme,
                            seed=seed,
                            miner=miner,
                            miner_params=tuple(sorted(self.params_for(miner).items())),
                            backend=self.backend,
                        )
                    )
        return tuple(cells)


def parse_seed_argument(text: str) -> tuple[int, ...]:
    """Parse a ``--seeds`` argument into an explicit seed tuple.

    Three forms are accepted: a count (``5`` → seeds 0..4), an inclusive
    range (``0-4`` or ``2-6``), and a comma list (``0,3,7``).
    """
    text = text.strip()

    def to_int(part: str) -> int:
        # Only the integer conversion gets the generic wrapper; the specific
        # range/count errors below must reach the caller untouched
        # (ValidationError subclasses ValueError, so a blanket except would
        # swallow them).
        try:
            return int(part)
        except ValueError as exc:
            raise ValidationError(
                f"cannot parse seeds {text!r}; use a count (5), a range (0-4) "
                f"or a comma list (0,3,7)"
            ) from exc

    if "," in text:
        seeds = tuple(to_int(part) for part in text.split(","))
    elif "-" in text and not text.startswith("-"):
        low_text, high_text = text.split("-", 1)
        low, high = to_int(low_text), to_int(high_text)
        if high < low:
            raise ValidationError(f"seed range {text!r} is empty")
        seeds = tuple(range(low, high + 1))
    else:
        count = to_int(text)
        if count < 1:
            raise ValidationError("--seeds needs at least one seed")
        seeds = tuple(range(count))
    if any(seed < 0 for seed in seeds):
        raise ValidationError(f"seeds must be non-negative, got {text!r}")
    if len(set(seeds)) != len(seeds):
        raise ValidationError(f"seeds {text!r} contain duplicates")
    return seeds


def resolve_scheme_argument(argument: str, n_categories: int) -> PipelineScheme:
    """Resolve one ``--schemes`` entry into a named matrix.

    The form is ``family:parameter`` where family is one of the classic
    scheme families (``warner``, ``up``/``uniform-perturbation``, ``frapp``)
    and parameter is the family's sweep parameter.
    """
    if ":" not in argument:
        raise ValidationError(
            f"scheme {argument!r} must have the form family:parameter "
            f"(e.g. warner:0.8)"
        )
    family_name, parameter_text = argument.split(":", 1)
    try:
        parameter = float(parameter_text)
    except ValueError as exc:
        raise ValidationError(
            f"scheme parameter {parameter_text!r} in {argument!r} is not a number"
        ) from exc
    family = scheme_family(family_name, n_categories)
    return PipelineScheme(name=argument, matrix=family.matrix(parameter))


def schemes_from_front(
    result: OptimizationResult, *, max_schemes: int | None = None
) -> tuple[PipelineScheme, ...]:
    """Turn an optimized Pareto front into pipeline schemes.

    Points are taken in ascending-privacy order (the order
    :class:`~repro.core.result.OptimizationResult` guarantees) and named
    ``front[<index>]@privacy=<value>`` so result tables stay readable.  When
    ``max_schemes`` is given, the front is thinned to at most that many
    points, evenly spaced across the privacy range.
    """
    points = list(result.points)
    if not points:
        raise ValidationError("the optimized front contains no points")
    if max_schemes is not None and max_schemes < len(points):
        if max_schemes < 1:
            raise ValidationError("max_schemes must be at least 1")
        if max_schemes == 1:
            indices = [0]
        else:
            step = (len(points) - 1) / (max_schemes - 1)
            indices = sorted({int(round(i * step)) for i in range(max_schemes)})
        points = [points[index] for index in indices]
    return tuple(
        PipelineScheme(
            name=f"front[{index:02d}]@privacy={point.privacy:.4f}",
            matrix=point.matrix,
        )
        for index, point in enumerate(points)
    )


def plan_pipeline(
    data: str,
    *,
    schemes: Sequence[str | PipelineScheme],
    miners: Sequence[str],
    seeds: Sequence[int],
    n_records: int = DEFAULT_N_RECORDS,
    n_categories: int | None = None,
    miner_options: Mapping[str, Mapping[str, Any]] | None = None,
) -> PipelineSpec:
    """Resolve arguments and build the pipeline specification.

    ``schemes`` entries may be ready :class:`PipelineScheme` objects (e.g.
    produced by :func:`schemes_from_front`) or ``family:parameter`` strings;
    miner names may be aliases (``dist``).  Scheme names must be unique —
    the result table is keyed by them.
    """
    prior = resolve_workload_prior(data, n_categories)
    if not schemes:
        raise ValidationError("a pipeline needs at least one scheme")
    if not miners:
        raise ValidationError("a pipeline needs at least one miner")
    if not seeds:
        raise ValidationError("a pipeline needs at least one seed")
    resolved_schemes = tuple(
        entry
        if isinstance(entry, PipelineScheme)
        else resolve_scheme_argument(entry, prior.n_categories)
        for entry in schemes
    )
    names = [scheme.name for scheme in resolved_schemes]
    if len(set(names)) != len(names):
        raise ValidationError(f"scheme names must be unique, got {names}")
    for scheme in resolved_schemes:
        if scheme.matrix.n_categories != prior.n_categories:
            raise ValidationError(
                f"scheme {scheme.name!r} is {scheme.matrix.n_categories}x"
                f"{scheme.matrix.n_categories} but the data has "
                f"{prior.n_categories} categories"
            )
    resolved_miners = tuple(get_miner(name).name for name in miners)
    if len(set(resolved_miners)) != len(resolved_miners):
        raise ValidationError(f"duplicate miners in {list(miners)}")
    # Canonicalise option keys so the documented aliases (`dist`) work in
    # miner_options exactly as they do in the miners list; two keys landing
    # on the same miner would silently shadow each other, so that is an error.
    options: dict[str, Mapping[str, Any]] = {}
    for name, values in (miner_options or {}).items():
        canonical = get_miner(name).name
        if canonical in options:
            raise ValidationError(
                f"miner options for {canonical!r} given more than once "
                f"(an alias and the canonical name?)"
            )
        options[canonical] = values
    unknown_option_miners = sorted(set(options) - set(resolved_miners))
    if unknown_option_miners:
        raise ValidationError(
            f"miner option(s) given for {unknown_option_miners}, which are not "
            f"part of the pipeline {list(resolved_miners)}"
        )
    miner_params = tuple(
        (name, tuple(sorted(get_miner(name).effective_params(options.get(name)).items())))
        for name in resolved_miners
    )
    return PipelineSpec(
        data=data,
        n_records=int(n_records),
        n_categories=n_categories,
        schemes=resolved_schemes,
        miners=resolved_miners,
        seeds=tuple(int(seed) for seed in seeds),
        miner_params=miner_params,
        backend=active_backend_name(),
    )
