"""Categorical datasets: attribute metadata plus integer-coded records.

The RR mechanism, the estimators and the mining applications all operate on
integer-coded categorical columns.  :class:`CategoricalDataset` bundles one or
more such columns with their attribute metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.data.distribution import CategoricalDistribution
from repro.exceptions import DataError


@dataclass(frozen=True)
class CategoricalAttribute:
    """Metadata of a categorical attribute.

    Parameters
    ----------
    name:
        Attribute name (e.g. ``"age"``).
    categories:
        Ordered category labels; the integer code of a value is its index in
        this tuple.
    """

    name: str
    categories: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise DataError("attribute name must not be empty")
        labels = tuple(str(label) for label in self.categories)
        if len(labels) < 2:
            raise DataError(f"attribute {self.name!r} needs at least two categories")
        if len(set(labels)) != len(labels):
            raise DataError(f"attribute {self.name!r} has duplicate category labels")
        object.__setattr__(self, "categories", labels)

    @property
    def n_categories(self) -> int:
        """Number of categories of this attribute."""
        return len(self.categories)

    def code_of(self, label: str) -> int:
        """Return the integer code of ``label``."""
        try:
            return self.categories.index(str(label))
        except ValueError as exc:
            raise DataError(
                f"unknown category {label!r} for attribute {self.name!r}"
            ) from exc

    def label_of(self, code: int) -> str:
        """Return the label of integer ``code``."""
        if not 0 <= code < self.n_categories:
            raise DataError(
                f"code {code} out of range for attribute {self.name!r} "
                f"with {self.n_categories} categories"
            )
        return self.categories[code]


@dataclass(frozen=True)
class CategoricalDataset:
    """An integer-coded categorical dataset.

    Parameters
    ----------
    attributes:
        Attribute metadata, one entry per column.
    records:
        2-D integer array of shape ``(n_records, n_attributes)``; entry
        ``records[r, a]`` is the category code of record ``r`` for attribute
        ``a``.
    """

    attributes: tuple[CategoricalAttribute, ...]
    records: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        attributes = tuple(self.attributes)
        if not attributes:
            raise DataError("dataset needs at least one attribute")
        names = [attribute.name for attribute in attributes]
        if len(set(names)) != len(names):
            raise DataError("attribute names must be unique")
        records = np.asarray(self.records, dtype=np.int64)
        if records.ndim == 1:
            records = records.reshape(-1, 1)
        if records.ndim != 2:
            raise DataError(f"records must be 2-D, got shape {records.shape}")
        if records.shape[1] != len(attributes):
            raise DataError(
                f"records have {records.shape[1]} columns but "
                f"{len(attributes)} attributes were declared"
            )
        if records.shape[0] == 0:
            raise DataError("dataset must contain at least one record")
        for index, attribute in enumerate(attributes):
            column = records[:, index]
            if column.min() < 0 or column.max() >= attribute.n_categories:
                raise DataError(
                    f"column {attribute.name!r} contains codes outside "
                    f"[0, {attribute.n_categories})"
                )
        object.__setattr__(self, "attributes", attributes)
        object.__setattr__(self, "records", records)

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_single_attribute(
        cls,
        values: Sequence[int] | np.ndarray,
        n_categories: int,
        name: str = "attribute",
        categories: Sequence[str] | None = None,
    ) -> "CategoricalDataset":
        """Build a one-attribute dataset from integer codes."""
        if categories is None:
            categories = tuple(f"c{i + 1}" for i in range(n_categories))
        attribute = CategoricalAttribute(name, tuple(categories))
        return cls((attribute,), np.asarray(values, dtype=np.int64).reshape(-1, 1))

    @classmethod
    def from_columns(
        cls,
        columns: Mapping[str, Sequence[int] | np.ndarray],
        category_labels: Mapping[str, Sequence[str]],
    ) -> "CategoricalDataset":
        """Build a dataset from named columns and their category labels."""
        attributes = []
        arrays = []
        for name, values in columns.items():
            labels = tuple(category_labels[name])
            attributes.append(CategoricalAttribute(name, labels))
            arrays.append(np.asarray(values, dtype=np.int64))
        records = np.column_stack(arrays)
        return cls(tuple(attributes), records)

    # -- basic protocol ----------------------------------------------------
    @property
    def n_records(self) -> int:
        """Number of records."""
        return int(self.records.shape[0])

    @property
    def n_attributes(self) -> int:
        """Number of attributes (columns)."""
        return int(self.records.shape[1])

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Names of all attributes, in column order."""
        return tuple(attribute.name for attribute in self.attributes)

    def __len__(self) -> int:
        return self.n_records

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.records)

    # -- access ------------------------------------------------------------
    def attribute_index(self, name: str) -> int:
        """Return the column index of attribute ``name``."""
        try:
            return self.attribute_names.index(name)
        except ValueError as exc:
            raise DataError(f"unknown attribute {name!r}") from exc

    def attribute(self, name: str) -> CategoricalAttribute:
        """Return the metadata of attribute ``name``."""
        return self.attributes[self.attribute_index(name)]

    def column(self, name: str) -> np.ndarray:
        """Return a copy of the integer-coded column for attribute ``name``."""
        return self.records[:, self.attribute_index(name)].copy()

    def distribution(self, name: str) -> CategoricalDistribution:
        """Return the empirical distribution of attribute ``name``."""
        attribute = self.attribute(name)
        return CategoricalDistribution.from_samples(
            self.column(name), attribute.n_categories, attribute.categories
        )

    def select(self, names: Sequence[str]) -> "CategoricalDataset":
        """Return a new dataset containing only the named attributes."""
        indices = [self.attribute_index(name) for name in names]
        attributes = tuple(self.attributes[index] for index in indices)
        return CategoricalDataset(attributes, self.records[:, indices].copy())

    def with_column(self, name: str, values: np.ndarray) -> "CategoricalDataset":
        """Return a copy of the dataset with attribute ``name`` replaced by
        ``values`` (same length, same domain)."""
        index = self.attribute_index(name)
        records = self.records.copy()
        values = np.asarray(values, dtype=np.int64)
        if values.shape != (self.n_records,):
            raise DataError(
                f"replacement column must have shape ({self.n_records},), "
                f"got {values.shape}"
            )
        records[:, index] = values
        return CategoricalDataset(self.attributes, records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CategoricalDataset(n_records={self.n_records}, "
            f"attributes={list(self.attribute_names)})"
        )
