"""Discretisation of continuous attributes into categorical codes.

The Adult dataset mixes categorical and continuous attributes; the paper
discretises the continuous ones before applying randomized response.  These
helpers implement the two standard strategies (equal-width and
equal-frequency binning) and return both the codes and the bin edges so the
discretisation is reproducible and invertible to ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class DiscretizationResult:
    """Result of discretising a continuous column.

    Attributes
    ----------
    codes:
        Integer bin index of every input value (``0 .. n_bins - 1``).
    edges:
        Bin edges of length ``n_bins + 1``; bin ``i`` covers
        ``[edges[i], edges[i + 1])`` (the last bin is right-inclusive).
    labels:
        Human-readable interval label per bin.
    """

    codes: np.ndarray
    edges: np.ndarray
    labels: tuple[str, ...]

    @property
    def n_bins(self) -> int:
        """Number of bins produced."""
        return len(self.labels)


def _build_labels(edges: np.ndarray) -> tuple[str, ...]:
    labels = []
    for index in range(edges.size - 1):
        low, high = edges[index], edges[index + 1]
        closer = "]" if index == edges.size - 2 else ")"
        labels.append(f"[{low:g}, {high:g}{closer}")
    return tuple(labels)


def _validate_values(values: np.ndarray | list[float]) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise DataError("values must be a non-empty one-dimensional sequence")
    if not np.all(np.isfinite(array)):
        raise DataError("values must be finite")
    return array


def discretize_equal_width(
    values: np.ndarray | list[float], n_bins: int
) -> DiscretizationResult:
    """Discretise ``values`` into ``n_bins`` equal-width bins."""
    check_positive_int(n_bins, "n_bins")
    array = _validate_values(values)
    low, high = float(array.min()), float(array.max())
    if low == high:
        raise DataError("values are constant and cannot be discretised")
    edges = np.linspace(low, high, n_bins + 1)
    codes = np.clip(np.searchsorted(edges, array, side="right") - 1, 0, n_bins - 1)
    return DiscretizationResult(codes.astype(np.int64), edges, _build_labels(edges))


def discretize_equal_frequency(
    values: np.ndarray | list[float], n_bins: int
) -> DiscretizationResult:
    """Discretise ``values`` into (approximately) equal-frequency bins.

    Bin edges are the empirical quantiles.  Duplicate quantiles (heavily tied
    data) are collapsed, so the result may contain fewer than ``n_bins`` bins.
    """
    check_positive_int(n_bins, "n_bins")
    array = _validate_values(values)
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)
    edges = np.unique(np.quantile(array, quantiles))
    if edges.size < 2:
        raise DataError("values are constant and cannot be discretised")
    n_actual = edges.size - 1
    codes = np.clip(np.searchsorted(edges, array, side="right") - 1, 0, n_actual - 1)
    return DiscretizationResult(codes.astype(np.int64), edges, _build_labels(edges))
