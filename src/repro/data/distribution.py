"""Categorical probability distributions.

A :class:`CategoricalDistribution` represents the prior ``P(X)`` over the
domain ``C = {c_1, ..., c_n}`` of a sensitive attribute.  It is the central
input to both the privacy metric (which needs the prior for the Bayes/MAP
adversary) and the utility metric (which needs the disguised distribution
``P* = M P``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import DataError
from repro.types import SeedLike, as_rng
from repro.utils.validation import check_probability_vector, normalize_probabilities


@dataclass(frozen=True)
class CategoricalDistribution:
    """A probability distribution over ``n`` named categories.

    Parameters
    ----------
    probabilities:
        Probability of each category; must sum to one.
    categories:
        Optional category labels.  Defaults to ``c1 ... cn``.
    """

    probabilities: np.ndarray
    categories: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        probs = check_probability_vector(self.probabilities, "probabilities")
        object.__setattr__(self, "probabilities", probs)
        if not self.categories:
            labels = tuple(f"c{i + 1}" for i in range(probs.size))
            object.__setattr__(self, "categories", labels)
        else:
            labels = tuple(str(label) for label in self.categories)
            if len(labels) != probs.size:
                raise DataError(
                    f"expected {probs.size} category labels, got {len(labels)}"
                )
            if len(set(labels)) != len(labels):
                raise DataError("category labels must be unique")
            object.__setattr__(self, "categories", labels)

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_weights(
        cls,
        weights: Sequence[float] | np.ndarray,
        categories: Sequence[str] | None = None,
    ) -> "CategoricalDistribution":
        """Build a distribution from non-negative, not-necessarily-normalised
        weights."""
        probs = normalize_probabilities(weights, "weights")
        return cls(probs, tuple(categories) if categories else ())

    @classmethod
    def from_counts(
        cls,
        counts: Mapping[str, float] | Sequence[float],
        categories: Sequence[str] | None = None,
    ) -> "CategoricalDistribution":
        """Build a distribution from a count mapping or count sequence."""
        if isinstance(counts, Mapping):
            labels = tuple(str(key) for key in counts)
            weights = np.asarray([counts[key] for key in counts], dtype=np.float64)
            return cls.from_weights(weights, labels)
        return cls.from_weights(np.asarray(counts, dtype=np.float64), categories)

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[int] | np.ndarray,
        n_categories: int,
        categories: Sequence[str] | None = None,
    ) -> "CategoricalDistribution":
        """Build the empirical distribution of integer-coded ``samples``."""
        values = np.asarray(samples, dtype=np.int64)
        if values.size == 0:
            raise DataError("samples must not be empty")
        if values.min() < 0 or values.max() >= n_categories:
            raise DataError(
                f"samples must be codes in [0, {n_categories}), "
                f"got range [{values.min()}, {values.max()}]"
            )
        counts = np.bincount(values, minlength=n_categories).astype(np.float64)
        return cls.from_weights(counts, categories)

    @classmethod
    def uniform(cls, n_categories: int) -> "CategoricalDistribution":
        """The discrete uniform distribution over ``n_categories`` values."""
        if n_categories <= 0:
            raise DataError("n_categories must be positive")
        return cls(np.full(n_categories, 1.0 / n_categories))

    # -- basic protocol ----------------------------------------------------
    @property
    def n_categories(self) -> int:
        """Number of categories in the domain."""
        return int(self.probabilities.size)

    def __len__(self) -> int:
        return self.n_categories

    def __iter__(self) -> Iterator[float]:
        return iter(self.probabilities.tolist())

    def __getitem__(self, index: int) -> float:
        return float(self.probabilities[index])

    def as_array(self) -> np.ndarray:
        """Return a copy of the probability vector."""
        return self.probabilities.copy()

    def as_dict(self) -> dict[str, float]:
        """Return a ``{category: probability}`` mapping."""
        return dict(zip(self.categories, self.probabilities.tolist()))

    # -- statistics --------------------------------------------------------
    @property
    def max_probability(self) -> float:
        """The largest category probability (lower bound on any privacy
        bound ``delta`` by Theorem 5)."""
        return float(self.probabilities.max())

    @property
    def mode(self) -> int:
        """Index of the most probable category."""
        return int(np.argmax(self.probabilities))

    def entropy(self) -> float:
        """Shannon entropy of the distribution in nats."""
        probs = self.probabilities[self.probabilities > 0]
        return float(-(probs * np.log(probs)).sum())

    def total_variation(self, other: "CategoricalDistribution") -> float:
        """Total-variation distance to ``other`` (same domain size)."""
        self._check_compatible(other)
        return float(0.5 * np.abs(self.probabilities - other.probabilities).sum())

    def mean_squared_error(self, other: "CategoricalDistribution") -> float:
        """Mean squared error between the two probability vectors."""
        self._check_compatible(other)
        return float(np.mean((self.probabilities - other.probabilities) ** 2))

    def kl_divergence(self, other: "CategoricalDistribution") -> float:
        """Kullback-Leibler divergence ``KL(self || other)`` in nats."""
        self._check_compatible(other)
        p = self.probabilities
        q = other.probabilities
        mask = p > 0
        if np.any(q[mask] == 0):
            return float("inf")
        return float((p[mask] * np.log(p[mask] / q[mask])).sum())

    def _check_compatible(self, other: "CategoricalDistribution") -> None:
        if self.n_categories != other.n_categories:
            raise DataError(
                "distributions have different domain sizes: "
                f"{self.n_categories} vs {other.n_categories}"
            )

    # -- sampling ----------------------------------------------------------
    def sample(self, n_records: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``n_records`` integer-coded samples from the distribution."""
        if n_records <= 0:
            raise DataError("n_records must be positive")
        rng = as_rng(seed)
        return rng.choice(self.n_categories, size=n_records, p=self.probabilities)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(
            f"{label}={prob:.4f}" for label, prob in zip(self.categories, self.probabilities)
        )
        return f"CategoricalDistribution({pairs})"


def empirical_distribution(
    samples: Iterable[int] | np.ndarray, n_categories: int
) -> CategoricalDistribution:
    """Convenience alias for :meth:`CategoricalDistribution.from_samples`."""
    return CategoricalDistribution.from_samples(np.asarray(list(samples)), n_categories)
