"""Data substrate: categorical distributions, datasets and generators.

The OptRR evaluation only needs single categorical attributes, but the data
layer is written to support multi-attribute datasets so the downstream
privacy-preserving mining applications (``repro.mining``) can consume the same
objects.
"""

from repro.data.distribution import CategoricalDistribution
from repro.data.dataset import CategoricalAttribute, CategoricalDataset
from repro.data.discretize import discretize_equal_frequency, discretize_equal_width
from repro.data.synthetic import (
    custom_distribution,
    gamma_distribution,
    geometric_distribution,
    normal_distribution,
    uniform_distribution,
    zipf_distribution,
    sample_dataset,
)
from repro.data.adult import adult_attribute_distribution, adult_attribute_names, load_adult_like

__all__ = [
    "CategoricalAttribute",
    "CategoricalDataset",
    "CategoricalDistribution",
    "adult_attribute_distribution",
    "adult_attribute_names",
    "custom_distribution",
    "discretize_equal_frequency",
    "discretize_equal_width",
    "gamma_distribution",
    "geometric_distribution",
    "load_adult_like",
    "normal_distribution",
    "sample_dataset",
    "uniform_distribution",
    "zipf_distribution",
]
