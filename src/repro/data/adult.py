"""Adult-census-like dataset generator.

The paper's real-data experiment (Figure 5(c)) uses the UCI *Adult* dataset,
disguises one attribute at a time and plots the resulting Pareto fronts.  This
environment has no network access, so the real file cannot be downloaded.
Instead this module generates a *synthetic Adult-like dataset*: for each of a
representative subset of Adult attributes we embed an approximate marginal
distribution (category weights chosen to mimic the well-known skew of the
census attributes — e.g. a dominant "Private" workclass, a bell-shaped age
profile, a heavily skewed capital-gain indicator) and sample records
independently per attribute.

Why this substitution is faithful: the OptRR experiment consumes only the
*marginal prior* ``P(X)`` of a single attribute and the record count ``N``.
The privacy metric (Eq. 8) and the utility metric (Theorem 6) are functions of
``P(X)``, ``M`` and ``N`` alone; no cross-attribute structure enters the
optimization.  A synthetic sample drawn from a similarly skewed marginal
therefore exercises exactly the same code path and produces the same
qualitative Pareto-front shape as the real file.  The substitution is recorded
in DESIGN.md.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.data.dataset import CategoricalAttribute, CategoricalDataset
from repro.data.distribution import CategoricalDistribution
from repro.exceptions import DataError
from repro.types import SeedLike, as_rng
from repro.utils.validation import check_positive_int

#: Default number of records; the real Adult training split has 32 561.
DEFAULT_N_RECORDS = 32_561

# Approximate marginal category weights for a representative subset of the
# Adult attributes.  The weights are *approximations* of the census skew (not
# copies of the data file); they only need to reproduce the qualitative shape
# (one or two dominant categories, a long tail) that drives Figure 5(c).
_ADULT_MARGINALS: dict[str, dict[str, float]] = {
    # The paper's "first attribute" is age, discretised.  Ten equal-width age
    # bands between 17 and 90 with a right-skewed, unimodal profile.
    "age": {
        "17-24": 0.16,
        "25-31": 0.18,
        "32-38": 0.17,
        "39-45": 0.16,
        "46-52": 0.12,
        "53-59": 0.09,
        "60-66": 0.06,
        "67-73": 0.03,
        "74-80": 0.02,
        "81-90": 0.01,
    },
    "workclass": {
        "Private": 0.70,
        "Self-emp-not-inc": 0.08,
        "Local-gov": 0.065,
        "State-gov": 0.04,
        "Self-emp-inc": 0.035,
        "Federal-gov": 0.03,
        "Unknown": 0.05,
    },
    "education": {
        "HS-grad": 0.32,
        "Some-college": 0.22,
        "Bachelors": 0.16,
        "Masters": 0.05,
        "Assoc-voc": 0.04,
        "11th": 0.04,
        "Assoc-acdm": 0.03,
        "10th": 0.03,
        "7th-8th": 0.02,
        "Other": 0.09,
    },
    "marital_status": {
        "Married-civ-spouse": 0.46,
        "Never-married": 0.33,
        "Divorced": 0.14,
        "Separated": 0.03,
        "Widowed": 0.03,
        "Married-spouse-absent": 0.01,
    },
    "occupation": {
        "Prof-specialty": 0.13,
        "Craft-repair": 0.13,
        "Exec-managerial": 0.12,
        "Adm-clerical": 0.12,
        "Sales": 0.11,
        "Other-service": 0.10,
        "Machine-op-inspct": 0.06,
        "Transport-moving": 0.05,
        "Handlers-cleaners": 0.04,
        "Other": 0.14,
    },
    "relationship": {
        "Husband": 0.40,
        "Not-in-family": 0.26,
        "Own-child": 0.16,
        "Unmarried": 0.11,
        "Wife": 0.05,
        "Other-relative": 0.02,
    },
    "race": {
        "White": 0.85,
        "Black": 0.10,
        "Asian-Pac-Islander": 0.03,
        "Amer-Indian-Eskimo": 0.01,
        "Other": 0.01,
    },
    "sex": {
        "Male": 0.67,
        "Female": 0.33,
    },
    "hours_per_week": {
        "0-19": 0.08,
        "20-34": 0.13,
        "35-39": 0.06,
        "40": 0.47,
        "41-49": 0.09,
        "50-59": 0.12,
        "60+": 0.05,
    },
    "income": {
        "<=50K": 0.76,
        ">50K": 0.24,
    },
}


def adult_attribute_names() -> tuple[str, ...]:
    """Names of the Adult-like attributes available from this module."""
    return tuple(_ADULT_MARGINALS)


def adult_attribute_distribution(name: str) -> CategoricalDistribution:
    """Return the (approximate) marginal prior of an Adult-like attribute."""
    try:
        marginal = _ADULT_MARGINALS[name]
    except KeyError as exc:
        raise DataError(
            f"unknown Adult attribute {name!r}; available: {sorted(_ADULT_MARGINALS)}"
        ) from exc
    return CategoricalDistribution.from_weights(
        np.asarray(list(marginal.values()), dtype=np.float64),
        tuple(marginal.keys()),
    )


def load_adult_like(
    n_records: int = DEFAULT_N_RECORDS,
    *,
    attributes: tuple[str, ...] | None = None,
    seed: SeedLike = None,
) -> CategoricalDataset:
    """Generate a synthetic Adult-like dataset.

    Parameters
    ----------
    n_records:
        Number of records to sample (defaults to the size of the real Adult
        training split).
    attributes:
        Subset of attribute names to include; defaults to all available.
    seed:
        Random seed or generator for reproducibility.
    """
    check_positive_int(n_records, "n_records")
    names = attributes if attributes is not None else adult_attribute_names()
    if not names:
        raise DataError("at least one attribute must be requested")
    rng = as_rng(seed)
    columns: list[np.ndarray] = []
    metadata: list[CategoricalAttribute] = []
    for name in names:
        distribution = adult_attribute_distribution(name)
        metadata.append(CategoricalAttribute(name, distribution.categories))
        columns.append(distribution.sample(n_records, seed=rng))
    return CategoricalDataset(tuple(metadata), np.column_stack(columns))


def adult_marginals() -> Mapping[str, Mapping[str, float]]:
    """Return a read-only view of the embedded approximate marginals."""
    return {name: dict(weights) for name, weights in _ADULT_MARGINALS.items()}
