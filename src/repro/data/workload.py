"""Mining workloads: datasets with a sensitive attribute and a dependent label.

The downstream-mining pipeline (:mod:`repro.pipeline`) measures how much
data-mining utility survives the RR disguise.  That question is only
meaningful on data where there is something to mine: the class label must
actually depend on the sensitive attribute, so that disguising the attribute
degrades — and reconstruction recovers — a real pattern.

:func:`build_workload` therefore samples the sensitive attribute from a
configurable prior (an Adult-like marginal or a synthetic family) and derives

* a binary ``outcome`` label whose positive rate increases linearly with the
  sensitive category code (planted signal for the decision-tree and
  association miners), and
* an independent ``context`` attribute (pure noise, so miners must *not*
  pick it up).

The construction is fully deterministic given ``(data spec, n_records,
seed)`` — the pipeline's caching and cross-worker determinism guarantees
build on this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.adult import adult_attribute_distribution, adult_attribute_names
from repro.data.dataset import CategoricalAttribute, CategoricalDataset
from repro.data.distribution import CategoricalDistribution
from repro.data.synthetic import make_distribution
from repro.exceptions import DataError
from repro.utils.validation import check_positive_int

#: Name of the disguised attribute in every workload dataset.
SENSITIVE_ATTRIBUTE = "sensitive"

#: Name of the (undisguised) class attribute the tree miner predicts.
CLASS_ATTRIBUTE = "outcome"

#: Name of the independent noise attribute.
CONTEXT_ATTRIBUTE = "context"

#: Positive rate of the outcome for the lowest / highest sensitive code; the
#: rate interpolates linearly in between (the planted monotone signal).
OUTCOME_BASE_RATE = 0.15
OUTCOME_TOP_RATE = 0.85

#: Domain size of the context noise attribute.
N_CONTEXT_CATEGORIES = 3


@dataclass(frozen=True)
class MiningWorkload:
    """One mining workload: the clean dataset plus its generating prior.

    Attributes
    ----------
    data:
        The data specification string the workload was built from
        (``adult:<attribute>`` or a synthetic family name).
    dataset:
        The clean (undisguised) dataset with attributes
        ``(sensitive, context, outcome)``.
    prior:
        The prior the sensitive attribute was sampled from.
    seed:
        The seed the records were sampled under.
    """

    data: str
    dataset: CategoricalDataset
    prior: CategoricalDistribution
    seed: int

    @property
    def n_records(self) -> int:
        """Number of records in the workload dataset."""
        return self.dataset.n_records

    @property
    def n_categories(self) -> int:
        """Domain size of the sensitive attribute."""
        return self.prior.n_categories


def resolve_workload_prior(
    data: str,
    n_categories: int | None = None,
    *,
    categories_label: str = "n_categories",
) -> CategoricalDistribution:
    """Resolve a data specification into a prior.

    ``adult:<attribute>`` resolves to the Adult-like marginal of that
    attribute (the category count is a property of the data; an explicit
    conflicting ``n_categories`` raises :class:`DataError`).  Any other name
    is a synthetic family (``normal``, ``gamma``, ``uniform``, ``zipf``,
    ``geometric``) resolved with :func:`~repro.data.synthetic.make_distribution`.

    This is the single resolution path shared by the pipeline and the CLI
    (``--distribution`` / ``--data``); ``categories_label`` names the
    conflicting knob in the error message (``--categories`` for the CLI).
    """
    if data == "adult" or data.startswith("adult:"):
        attribute = data.split(":", 1)[1] if ":" in data else adult_attribute_names()[0]
        prior = adult_attribute_distribution(attribute)
        if n_categories is not None and n_categories != prior.n_categories:
            raise DataError(
                f"{categories_label} {n_categories} conflicts with adult attribute "
                f"{attribute!r}, which has {prior.n_categories} categories; "
                f"omit {categories_label} to derive it from the data"
            )
        return prior
    return make_distribution(data, n_categories if n_categories is not None else 10)


def build_workload(
    data: str,
    n_records: int,
    seed: int,
    *,
    n_categories: int | None = None,
) -> MiningWorkload:
    """Build the deterministic mining workload for ``(data, n_records, seed)``.

    The sensitive attribute is sampled i.i.d. from the resolved prior; the
    outcome label is Bernoulli with success probability interpolating from
    :data:`OUTCOME_BASE_RATE` (lowest sensitive code) to
    :data:`OUTCOME_TOP_RATE` (highest); the context attribute is uniform
    noise.  All randomness derives from ``np.random.default_rng(seed)`` in a
    fixed draw order, so the same inputs always produce identical records.
    """
    check_positive_int(n_records, "n_records")
    prior = resolve_workload_prior(data, n_categories)
    n = prior.n_categories
    rng = np.random.default_rng(int(seed))
    sensitive = rng.choice(n, size=n_records, p=prior.probabilities)
    positive_rate = OUTCOME_BASE_RATE + (OUTCOME_TOP_RATE - OUTCOME_BASE_RATE) * (
        sensitive / (n - 1)
    )
    outcome = (rng.random(n_records) < positive_rate).astype(np.int64)
    context = rng.integers(0, N_CONTEXT_CATEGORIES, size=n_records)
    attributes = (
        CategoricalAttribute(SENSITIVE_ATTRIBUTE, prior.categories or tuple(
            f"c{i + 1}" for i in range(n)
        )),
        CategoricalAttribute(
            CONTEXT_ATTRIBUTE, tuple(f"ctx{i + 1}" for i in range(N_CONTEXT_CATEGORIES))
        ),
        CategoricalAttribute(CLASS_ATTRIBUTE, ("no", "yes")),
    )
    records = np.column_stack([sensitive.astype(np.int64), context, outcome])
    dataset = CategoricalDataset(attributes, records)
    return MiningWorkload(data=data, dataset=dataset, prior=prior, seed=int(seed))
