"""Synthetic categorical data generators used in the paper's evaluation.

Section VI of the paper evaluates OptRR on single-attribute synthetic datasets
of 10 000 records with 10 category values whose probabilities follow a normal,
gamma or (discrete) uniform distribution.  The generators here discretise the
named continuous distribution onto ``n_categories`` equal-width bins covering
the bulk of its mass, producing the prior ``P(X)``, and can then sample a
dataset from that prior.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.data.distribution import CategoricalDistribution
from repro.exceptions import DataError
from repro.types import SeedLike, as_rng
from repro.utils.validation import check_positive_int, normalize_probabilities

#: Number of quadrature points per bin used when integrating a density.
_QUADRATURE_POINTS = 64


def _discretize_density(
    density: Callable[[np.ndarray], np.ndarray],
    lower: float,
    upper: float,
    n_categories: int,
) -> np.ndarray:
    """Integrate ``density`` over ``n_categories`` equal-width bins of
    ``[lower, upper]`` and normalise the bin masses into probabilities."""
    if upper <= lower:
        raise DataError("upper bound must exceed lower bound")
    edges = np.linspace(lower, upper, n_categories + 1)
    masses = np.empty(n_categories, dtype=np.float64)
    for index in range(n_categories):
        xs = np.linspace(edges[index], edges[index + 1], _QUADRATURE_POINTS)
        masses[index] = np.trapezoid(density(xs), xs)
    return normalize_probabilities(masses, "bin masses")


def normal_distribution(
    n_categories: int = 10,
    *,
    mean: float = 0.0,
    std: float = 1.0,
    span_sigmas: float = 3.0,
) -> CategoricalDistribution:
    """Discretised normal prior used for Figure 4.

    The density of ``N(mean, std)`` is integrated over ``n_categories``
    equal-width bins spanning ``mean +/- span_sigmas * std``.
    """
    check_positive_int(n_categories, "n_categories")
    if std <= 0:
        raise DataError("std must be positive")
    if span_sigmas <= 0:
        raise DataError("span_sigmas must be positive")

    def density(xs: np.ndarray) -> np.ndarray:
        z = (xs - mean) / std
        return np.exp(-0.5 * z * z) / (std * math.sqrt(2.0 * math.pi))

    probs = _discretize_density(
        density, mean - span_sigmas * std, mean + span_sigmas * std, n_categories
    )
    return CategoricalDistribution(probs)


def gamma_distribution(
    n_categories: int = 10,
    *,
    alpha: float = 1.0,
    beta: float = 2.0,
    upper_quantile_mass: float = 0.995,
) -> CategoricalDistribution:
    """Discretised gamma prior used for Figure 5(a) and 5(d).

    ``alpha`` is the shape and ``beta`` the scale parameter (the paper's
    ``alpha = 1.0, beta = 2.0``).  The density is integrated over equal-width
    bins of ``[0, U]`` where ``U`` captures ``upper_quantile_mass`` of the
    distribution's mass.
    """
    check_positive_int(n_categories, "n_categories")
    if alpha <= 0 or beta <= 0:
        raise DataError("alpha and beta must be positive")
    if not 0.5 < upper_quantile_mass < 1.0:
        raise DataError("upper_quantile_mass must be in (0.5, 1.0)")

    def density(xs: np.ndarray) -> np.ndarray:
        xs = np.maximum(xs, 1e-300)
        log_pdf = (
            (alpha - 1.0) * np.log(xs)
            - xs / beta
            - alpha * math.log(beta)
            - math.lgamma(alpha)
        )
        return np.exp(log_pdf)

    upper = _gamma_quantile(upper_quantile_mass, alpha, beta)
    probs = _discretize_density(density, 0.0, upper, n_categories)
    return CategoricalDistribution(probs)


def _gamma_quantile(q: float, alpha: float, beta: float) -> float:
    """Approximate the ``q`` quantile of Gamma(alpha, beta) by bisection on the
    regularised lower incomplete gamma function."""
    lower, upper = 0.0, beta * max(alpha, 1.0)
    while _gamma_cdf(upper, alpha, beta) < q:
        upper *= 2.0
        if upper > 1e9:  # pragma: no cover - defensive
            break
    for _ in range(200):
        middle = 0.5 * (lower + upper)
        if _gamma_cdf(middle, alpha, beta) < q:
            lower = middle
        else:
            upper = middle
    return upper


def _gamma_cdf(x: float, alpha: float, beta: float) -> float:
    """Regularised lower incomplete gamma function ``P(alpha, x / beta)``.

    Uses the series expansion for small arguments and the continued fraction
    for large ones (Numerical Recipes style), which is accurate to ~1e-12 and
    avoids a scipy dependency in the core library.
    """
    if x <= 0:
        return 0.0
    z = x / beta
    if z < alpha + 1.0:
        # Series representation.
        term = 1.0 / alpha
        total = term
        a = alpha
        for _ in range(500):
            a += 1.0
            term *= z / a
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        return total * math.exp(-z + alpha * math.log(z) - math.lgamma(alpha))
    # Continued fraction representation of Q, return 1 - Q.
    tiny = 1e-300
    b = z + 1.0 - alpha
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - alpha)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    q_upper = math.exp(-z + alpha * math.log(z) - math.lgamma(alpha)) * h
    return 1.0 - q_upper


def uniform_distribution(n_categories: int = 10) -> CategoricalDistribution:
    """Discrete uniform prior used for Figure 5(b)."""
    check_positive_int(n_categories, "n_categories")
    return CategoricalDistribution.uniform(n_categories)


def zipf_distribution(n_categories: int = 10, *, exponent: float = 1.0) -> CategoricalDistribution:
    """Zipf (power-law) prior, useful for additional skewed-data experiments."""
    check_positive_int(n_categories, "n_categories")
    if exponent <= 0:
        raise DataError("exponent must be positive")
    ranks = np.arange(1, n_categories + 1, dtype=np.float64)
    return CategoricalDistribution.from_weights(ranks ** (-exponent))


def geometric_distribution(
    n_categories: int = 10, *, success_probability: float = 0.4
) -> CategoricalDistribution:
    """Truncated geometric prior, another skewed synthetic workload."""
    check_positive_int(n_categories, "n_categories")
    if not 0.0 < success_probability < 1.0:
        raise DataError("success_probability must be in (0, 1)")
    ks = np.arange(n_categories, dtype=np.float64)
    weights = success_probability * (1.0 - success_probability) ** ks
    return CategoricalDistribution.from_weights(weights)


def custom_distribution(
    weights: Sequence[float] | np.ndarray,
    categories: Sequence[str] | None = None,
) -> CategoricalDistribution:
    """Build a prior from arbitrary non-negative weights."""
    return CategoricalDistribution.from_weights(np.asarray(weights, dtype=np.float64), categories)


#: Named registry of the synthetic priors used throughout the experiments.
DISTRIBUTION_FACTORIES: dict[str, Callable[..., CategoricalDistribution]] = {
    "normal": normal_distribution,
    "gamma": gamma_distribution,
    "uniform": uniform_distribution,
    "zipf": zipf_distribution,
    "geometric": geometric_distribution,
}


def make_distribution(name: str, n_categories: int = 10, **kwargs) -> CategoricalDistribution:
    """Look up a synthetic prior by name (``normal``, ``gamma``, ...)."""
    try:
        factory = DISTRIBUTION_FACTORIES[name]
    except KeyError as exc:
        raise DataError(
            f"unknown distribution {name!r}; available: {sorted(DISTRIBUTION_FACTORIES)}"
        ) from exc
    return factory(n_categories, **kwargs)


def sample_dataset(
    distribution: CategoricalDistribution,
    n_records: int = 10_000,
    *,
    name: str = "attribute",
    seed: SeedLike = None,
) -> CategoricalDataset:
    """Sample a single-attribute dataset of ``n_records`` from ``distribution``.

    This mirrors the paper's synthetic workloads (10 000 records drawn from a
    10-category prior).
    """
    check_positive_int(n_records, "n_records")
    values = distribution.sample(n_records, seed=as_rng(seed))
    return CategoricalDataset.from_single_attribute(
        values, distribution.n_categories, name=name, categories=distribution.categories
    )
