"""Configuration of the OptRR optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.utils.validation import check_in_unit_interval, check_positive_int

#: Low-fidelity fraction the CLI uses when ``--fidelity`` is passed without
#: an explicit ``--low-fidelity-fraction``.
DEFAULT_LOW_FIDELITY_FRACTION = 0.2


@dataclass(frozen=True)
class OptRRConfig:
    """Hyper-parameters of an OptRR run (Algorithm "Optimization for RR
    Matrices" in Section V-A).

    Parameters
    ----------
    population_size:
        ``N_Q`` — number of offspring matrices generated per generation.
    archive_size:
        ``N_V`` — number of elite matrices kept between generations.
    optimal_set_size:
        ``N_Ω`` — number of privacy-indexed slots in the optimal set; the
        paper sets this much larger than the archive because updating Ω is
        cheap.
    n_generations:
        ``L`` — maximum number of generations (the paper runs 20 000; a few
        hundred already converge to the qualitative front for n = 10).
    stagnation_patience:
        Optional early-stopping patience: stop when Ω receives no update for
        this many consecutive generations (``None`` disables it).
    crossover_rate, mutation_rate:
        Probabilities of applying the column crossover / column mutation.
    mutation_scale:
        Upper bound of the random value added or subtracted by the mutation
        operator.
    delta:
        Worst-case privacy bound (Eq. 9); ``None`` disables the bound.
    density_k:
        Neighbour index for the SPEA2 density estimator (the paper uses 1).
    diagonal_bias:
        Diagonal bias applied to half of the random initial matrices so the
        initial population spans matrices from near-uniform to near-identity.
    baseline_seeds:
        Number of Warner-family matrices (bound-repaired when ``delta`` is
        set) used as a warm start: all of them are offered to the optimal set
        Ω and an evenly spaced subset joins the initial population.  Warner
        matrices are ordinary members of the search space, so seeding them
        only accelerates convergence towards the front the paper reaches
        after 20 000 generations; set to 0 for the paper's purely random
        initialisation.
    low_fidelity_fraction:
        Fraction of the record count used for the cheap first-pass evaluation
        of each offspring generation (multi-fidelity scheduling, see
        :mod:`repro.emoo.fidelity`).  The default 1.0 disables fidelity
        scheduling entirely and keeps the exact single-fidelity path.
    promotion_fraction:
        Fraction of each offspring generation promoted to a full-fidelity
        re-evaluation (only used when ``low_fidelity_fraction < 1``).
    min_fidelity:
        Floor for the deadline-driven low-fidelity adaptation (only used
        when ``low_fidelity_fraction < 1``).
    seed:
        Random seed for reproducibility.
    """

    population_size: int = 40
    archive_size: int = 40
    optimal_set_size: int = 1000
    n_generations: int = 300
    stagnation_patience: int | None = None
    crossover_rate: float = 0.9
    mutation_rate: float = 0.5
    mutation_scale: float = 0.3
    delta: float | None = None
    density_k: int = 1
    diagonal_bias: float = 2.0
    baseline_seeds: int = 1001
    low_fidelity_fraction: float = 1.0
    promotion_fraction: float = 0.25
    min_fidelity: float = 0.05
    seed: int | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.population_size, "population_size")
        check_positive_int(self.archive_size, "archive_size")
        check_positive_int(self.optimal_set_size, "optimal_set_size")
        check_positive_int(self.n_generations, "n_generations")
        if self.stagnation_patience is not None:
            check_positive_int(self.stagnation_patience, "stagnation_patience")
        check_in_unit_interval(self.crossover_rate, "crossover_rate")
        check_in_unit_interval(self.mutation_rate, "mutation_rate")
        if not 0.0 < self.mutation_scale <= 1.0:
            raise ValidationError(
                f"mutation_scale must be in (0, 1], got {self.mutation_scale}"
            )
        if self.delta is not None:
            check_in_unit_interval(self.delta, "delta", inclusive_low=False)
        check_positive_int(self.density_k, "density_k")
        if self.diagonal_bias < 0:
            raise ValidationError("diagonal_bias must be non-negative")
        if self.baseline_seeds < 0:
            raise ValidationError("baseline_seeds must be non-negative")
        if not 0.0 < self.low_fidelity_fraction <= 1.0:
            raise ValidationError(
                f"low_fidelity_fraction must be in (0, 1], got {self.low_fidelity_fraction}"
            )
        if not 0.0 < self.promotion_fraction <= 1.0:
            raise ValidationError(
                f"promotion_fraction must be in (0, 1], got {self.promotion_fraction}"
            )
        if not 0.0 < self.min_fidelity <= 1.0:
            raise ValidationError(
                f"min_fidelity must be in (0, 1], got {self.min_fidelity}"
            )
        if self.population_size < 2:
            raise ValidationError("population_size must be at least 2")

    def with_updates(self, **changes) -> "OptRRConfig":
        """Return a copy of this configuration with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)
