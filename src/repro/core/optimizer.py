"""The OptRR optimizer: SPEA2 customised for RR matrices (Section V).

The driver below follows the paper's algorithm outline:

1. *Fitness assignment* over the union of population and archive (SPEA2
   strength + raw fitness + density);
2. *Environmental selection* into a bounded archive with diversity-preserving
   truncation;
3. *Mating selection* by binary tournament;
4. *Crossover and mutation* with the RR-matrix-specific operators;
5. *Meeting the bound*: repair every offspring so ``max P(X|Y) <= delta``;
6. *Updating the three sets*: offer the archive and the offspring to the
   optimal set Ω (privacy-indexed), and inject Ω's best matrices back into
   the evolving sets so good discarded solutions keep participating;
7. *Termination*: a fixed generation budget and/or Ω-stagnation patience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.archive import OptimalSet
from repro.core.config import OptRRConfig
from repro.core.problem import RRMatrixProblem
from repro.core.result import OptimizationResult
from repro.data.distribution import CategoricalDistribution
from repro.emoo.fitness import assign_spea2_fitness
from repro.emoo.individual import Individual
from repro.emoo.selection import binary_tournament, environmental_selection
from repro.emoo.termination import (
    GenerationState,
    MaxGenerations,
    StagnationTermination,
    TerminationCriterion,
)
from repro.exceptions import OptimizationError
from repro.metrics.privacy import check_bound_feasible
from repro.rr.matrix import stack_matrices
from repro.types import SeedLike, as_rng
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Progress callback invoked after each generation with
#: (generation index, archive, optimal set).
ProgressCallback = Callable[[int, list[Individual], OptimalSet], None]


@dataclass
class OptRROptimizer:
    """Search for Pareto-optimal RR matrices for a given data distribution.

    Parameters
    ----------
    prior:
        The original data distribution ``P(X)`` (a
        :class:`~repro.data.distribution.CategoricalDistribution` or a
        probability vector).
    n_records:
        Number of records ``N`` of the dataset to be disguised; enters the
        closed-form utility (Theorem 6).
    config:
        Optimization hyper-parameters, including the privacy bound ``delta``.

    Examples
    --------
    >>> from repro.data import normal_distribution
    >>> from repro.core import OptRRConfig, OptRROptimizer
    >>> prior = normal_distribution(5)
    >>> config = OptRRConfig(n_generations=20, delta=0.8, seed=7)
    >>> result = OptRROptimizer(prior, n_records=1000, config=config).run()
    >>> len(result) > 0
    True
    """

    prior: CategoricalDistribution
    n_records: int
    config: OptRRConfig = field(default_factory=OptRRConfig)

    def __post_init__(self) -> None:
        if not isinstance(self.prior, CategoricalDistribution):
            self.prior = CategoricalDistribution(np.asarray(self.prior, dtype=np.float64))
        if self.config.delta is not None:
            check_bound_feasible(self.prior.probabilities, self.config.delta)
        self._problem = RRMatrixProblem(
            prior=self.prior,
            n_records=self.n_records,
            delta=self.config.delta,
            mutation_scale=self.config.mutation_scale,
            diagonal_bias=self.config.diagonal_bias,
        )

    @property
    def problem(self) -> RRMatrixProblem:
        """The underlying EMOO problem (exposed for ablations and tests)."""
        return self._problem

    def _termination(self) -> TerminationCriterion:
        criterion: TerminationCriterion = MaxGenerations(self.config.n_generations)
        if self.config.stagnation_patience is not None:
            criterion = criterion | StagnationTermination(self.config.stagnation_patience)
        return criterion

    def run(
        self,
        *,
        seed: SeedLike = None,
        on_generation: ProgressCallback | None = None,
    ) -> OptimizationResult:
        """Run the optimization and return the resulting Pareto front.

        Parameters
        ----------
        seed:
            Overrides ``config.seed`` when provided.
        on_generation:
            Optional callback invoked after every generation.
        """
        config = self.config
        rng = as_rng(seed if seed is not None else config.seed)
        termination = self._termination()
        termination.reset()
        problem = self._problem

        population = problem.initial_population(config.population_size, rng)
        baseline_seeds = self._baseline_seed_individuals(rng)
        if not population:
            raise OptimizationError("initial population is empty")
        archive: list[Individual] = []
        optimal_set = OptimalSet(config.optimal_set_size)
        optimal_set.offer_many(population)
        # The full baseline sweep goes straight into Ω (O(1) per matrix); only
        # a thin, evenly spaced subset joins the evolving population so the
        # per-generation selection cost stays bounded.
        optimal_set.offer_many(baseline_seeds)
        if baseline_seeds:
            stride = max(1, len(baseline_seeds) // 25)
            population.extend(baseline_seeds[::stride])

        generation = 0
        while True:
            # 1-2. Fitness assignment + environmental selection on Q_t + V_t.
            union = population + archive
            archive = environmental_selection(
                union, config.archive_size, density_k=config.density_k
            )
            # 3-5. Mating selection, crossover, mutation, bound repair — the
            # whole offspring generation moves as one (B, n, n) stack.
            offspring_stack = self._make_offspring(archive, rng)
            population = problem.evaluate_stack(offspring_stack)
            # 6. Update the three sets: Ω absorbs the new generation, and the
            # archive/population are refreshed with Ω's best matrices for the
            # privacy levels they already occupy.
            updates = optimal_set.offer_many(population)
            updates += optimal_set.offer_many(archive)
            self._refresh_from_optimal_set(population, optimal_set)
            self._refresh_from_optimal_set(archive, optimal_set)
            if on_generation is not None:
                on_generation(generation, archive, optimal_set)
            # 7. Termination.
            state = GenerationState(generation=generation, archive_updates=updates)
            if termination.should_stop(state):
                break
            generation += 1

        front = optimal_set.pareto_members()
        if not front:
            # No feasible matrix was ever found (possible only with an
            # extremely tight delta); fall back to the archive so the caller
            # still gets diagnostics.
            front = archive
        result = OptimizationResult.from_individuals(
            front,
            optimal_set.members(),
            n_generations=generation + 1,
            n_evaluations=problem.n_evaluations,
        )
        logger.debug(
            "OptRR finished: %d generations, %d evaluations, front size %d, "
            "privacy range %s",
            result.n_generations,
            result.n_evaluations,
            len(result),
            result.privacy_range if len(result) else "n/a",
        )
        return result

    # -- internals -----------------------------------------------------------
    def _baseline_seed_individuals(self, rng: np.random.Generator) -> list[Individual]:
        """Warm-start individuals: Warner-family matrices (bound-repaired when
        a ``delta`` is configured), evaluated like any other candidate.

        Warner matrices are ordinary points of the search space; starting the
        optimal set Ω from the classic front and improving on it reproduces
        the behaviour the paper reaches after 20 000 random-start generations
        within the few hundred generations this reproduction runs by default.
        """
        config = self.config
        if config.baseline_seeds <= 0:
            return []
        from repro.rr.schemes import warner_matrix

        n = self.prior.n_categories
        # Sweep the full Warner family, p in [0, 1] (the same grid as the
        # baseline comparison); p below 1/n produces the "anti-diagonal"
        # branch that matters at the high-privacy end of the front.
        retention_values = np.linspace(0.0, 1.0, config.baseline_seeds)
        matrices = [warner_matrix(n, float(retention)) for retention in retention_values]
        matrices = self._problem.repair_genomes(matrices, rng)
        return self._problem.evaluate_genomes(matrices)

    def _make_offspring(
        self, archive: list[Individual], rng: np.random.Generator
    ) -> np.ndarray:
        """Mating selection, crossover, mutation and bound repair, producing
        the next population as a ``(population_size, n, n)`` stack."""
        config = self.config
        problem = self._problem
        assign_spea2_fitness(archive, config.density_k)
        parents = binary_tournament(archive, config.population_size, seed=rng)
        parent_stack = stack_matrices([parent.genome for parent in parents])
        n_parents = parent_stack.shape[0]
        first_index = np.arange(0, n_parents, 2)
        first = parent_stack[first_index]
        second = parent_stack[(first_index + 1) % n_parents]
        crossed = rng.random(size=first.shape[0]) < config.crossover_rate
        child_a = first.copy()
        child_b = second.copy()
        if crossed.any():
            cross_a, cross_b = problem.crossover_stack(first[crossed], second[crossed], rng)
            child_a[crossed] = cross_a
            child_b[crossed] = cross_b
        children = np.empty((2 * first.shape[0], *parent_stack.shape[1:]))
        children[0::2] = child_a
        children[1::2] = child_b
        children = children[: config.population_size]
        mutated = rng.random(size=children.shape[0]) < config.mutation_rate
        if mutated.any():
            children[mutated] = problem.mutate_stack(children[mutated], rng)
        return problem.repair_stack(children)

    def _refresh_from_optimal_set(
        self, individuals: list[Individual], optimal_set: OptimalSet
    ) -> None:
        """Replace evolving individuals with strictly better Ω occupants of the
        same privacy slot (the reverse direction of the Ω update)."""
        for index, individual in enumerate(individuals):
            if not individual.feasible or "privacy" not in individual.metadata:
                continue
            slot = optimal_set.slot_of(float(individual.metadata["privacy"]))
            occupant = optimal_set.best_for_slot(slot)
            if occupant is None:
                continue
            if float(occupant.metadata["utility"]) < float(individual.metadata["utility"]):
                individuals[index] = occupant.copy()
