"""The OptRR optimizer: SPEA2 customised for RR matrices (Section V).

The driver below follows the paper's algorithm outline:

1. *Fitness assignment* over the union of population and archive (SPEA2
   strength + raw fitness + density);
2. *Environmental selection* into a bounded archive with diversity-preserving
   truncation;
3. *Mating selection* by binary tournament;
4. *Crossover and mutation* with the RR-matrix-specific operators;
5. *Meeting the bound*: repair every offspring so ``max P(X|Y) <= delta``;
6. *Updating the three sets*: offer the archive and the offspring to the
   optimal set Ω (privacy-indexed), and inject Ω's best matrices back into
   the evolving sets so good discarded solutions keep participating;
7. *Termination*: a fixed generation budget and/or Ω-stagnation patience.

The whole loop is array-native: population and archive are
structure-of-arrays :class:`~repro.emoo.population.Population` objects whose
``(P, n, n)`` genome stack is built once per generation by the batch
evaluator and only sliced by index afterwards.  The pairwise
objective-distance matrix is computed once per generation and shared between
density estimation and archive truncation; mating selection reuses the
fitness environmental selection just assigned (stamped per generation, so
staleness is impossible) instead of re-running fitness assignment on the
archive.  ``Individual`` objects appear only at the result boundary and
inside Ω.  The pre-PR list-based loop is preserved verbatim in
:mod:`repro.core.reference` for equivalence tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.archive import OptimalSet
from repro.core.config import OptRRConfig
from repro.core.problem import RRMatrixProblem
from repro.core.result import OptimizationResult
from repro.data.distribution import CategoricalDistribution
from repro.emoo.density import pairwise_distances
from repro.emoo.fitness import spea2_fitness_from_arrays
from repro.emoo.individual import Individual
from repro.emoo.population import Population
from repro.emoo.selection import (
    binary_tournament_indices,
    environmental_selection_indices,
)
from repro.emoo.termination import (
    GenerationState,
    MaxGenerations,
    StagnationTermination,
    TerminationCriterion,
)
from repro.metrics.privacy import check_bound_feasible
from repro.types import SeedLike, as_rng
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Progress callback invoked after each generation with
#: (generation index, archive, optimal set).
ProgressCallback = Callable[[int, list[Individual], OptimalSet], None]


@dataclass
class OptRROptimizer:
    """Search for Pareto-optimal RR matrices for a given data distribution.

    Parameters
    ----------
    prior:
        The original data distribution ``P(X)`` (a
        :class:`~repro.data.distribution.CategoricalDistribution` or a
        probability vector).
    n_records:
        Number of records ``N`` of the dataset to be disguised; enters the
        closed-form utility (Theorem 6).
    config:
        Optimization hyper-parameters, including the privacy bound ``delta``.

    Examples
    --------
    >>> from repro.data import normal_distribution
    >>> from repro.core import OptRRConfig, OptRROptimizer
    >>> prior = normal_distribution(5)
    >>> config = OptRRConfig(n_generations=20, delta=0.8, seed=7)
    >>> result = OptRROptimizer(prior, n_records=1000, config=config).run()
    >>> len(result) > 0
    True
    """

    prior: CategoricalDistribution
    n_records: int
    config: OptRRConfig = field(default_factory=OptRRConfig)

    def __post_init__(self) -> None:
        if not isinstance(self.prior, CategoricalDistribution):
            self.prior = CategoricalDistribution(np.asarray(self.prior, dtype=np.float64))
        if self.config.delta is not None:
            check_bound_feasible(self.prior.probabilities, self.config.delta)
        self._problem = RRMatrixProblem(
            prior=self.prior,
            n_records=self.n_records,
            delta=self.config.delta,
            mutation_scale=self.config.mutation_scale,
            diagonal_bias=self.config.diagonal_bias,
        )

    @property
    def problem(self) -> RRMatrixProblem:
        """The underlying EMOO problem (exposed for ablations and tests)."""
        return self._problem

    def _termination(self) -> TerminationCriterion:
        criterion: TerminationCriterion = MaxGenerations(self.config.n_generations)
        if self.config.stagnation_patience is not None:
            criterion = criterion | StagnationTermination(self.config.stagnation_patience)
        return criterion

    def run(
        self,
        *,
        seed: SeedLike = None,
        on_generation: ProgressCallback | None = None,
    ) -> OptimizationResult:
        """Run the optimization and return the resulting Pareto front.

        Parameters
        ----------
        seed:
            Overrides ``config.seed`` when provided.
        on_generation:
            Optional callback invoked after every generation.  The archive is
            materialised as ``Individual`` views only when a callback is
            registered.
        """
        config = self.config
        rng = as_rng(seed if seed is not None else config.seed)
        termination = self._termination()
        termination.reset()
        problem = self._problem

        population = problem.initial_population_soa(config.population_size, rng)
        baseline = self._baseline_seed_population(rng)
        optimal_set = OptimalSet(config.optimal_set_size)
        self._offer_population(optimal_set, population)
        # The full baseline sweep goes straight into Ω (O(1) per matrix); only
        # a thin, evenly spaced subset joins the evolving population so the
        # per-generation selection cost stays bounded.
        if baseline is not None:
            self._offer_population(optimal_set, baseline)
            stride = max(1, baseline.size // 25)
            population = Population.concat(
                population, baseline.take(np.arange(0, baseline.size, stride))
            )

        archive: Population | None = None
        generation = 0
        while True:
            # 1-2. Fitness assignment + environmental selection on Q_t + V_t.
            # The pairwise distance matrix is computed once and shared between
            # the density estimator and (via slicing) archive truncation.
            union = population if archive is None else Population.concat(population, archive)
            distances = pairwise_distances(union.objectives)
            _, _, fitness = spea2_fitness_from_arrays(
                union.objectives, union.feasible, config.density_k, distances=distances
            )
            selected = environmental_selection_indices(
                fitness, config.archive_size, distances=distances
            )
            archive = union.take(selected)
            archive.set_fitness(fitness[selected], generation)
            # 3-5. Mating selection, crossover, mutation, bound repair — the
            # whole offspring generation moves as one (B, n, n) stack.
            offspring_stack = self._make_offspring(archive, rng, generation)
            population = problem.evaluate_population(offspring_stack)
            # 6. Update the three sets: Ω absorbs the new generation, and the
            # archive/population are refreshed with Ω's best matrices for the
            # privacy levels they already occupy.
            updates = self._offer_population(optimal_set, population)
            updates += self._offer_population(optimal_set, archive)
            self._refresh_from_optimal_set(population, optimal_set)
            self._refresh_from_optimal_set(archive, optimal_set)
            if on_generation is not None:
                on_generation(
                    generation, problem.population_to_individuals(archive), optimal_set
                )
            # 7. Termination.
            state = GenerationState(generation=generation, archive_updates=updates)
            if termination.should_stop(state):
                break
            generation += 1

        front = optimal_set.pareto_members()
        if not front:
            # No feasible matrix was ever found (possible only with an
            # extremely tight delta); fall back to the archive so the caller
            # still gets diagnostics.
            front = problem.population_to_individuals(archive)
        result = OptimizationResult.from_individuals(
            front,
            optimal_set.members(),
            n_generations=generation + 1,
            n_evaluations=problem.n_evaluations,
        )
        logger.debug(
            "OptRR finished: %d generations, %d evaluations, front size %d, "
            "privacy range %s",
            result.n_generations,
            result.n_evaluations,
            len(result),
            result.privacy_range if len(result) else "n/a",
        )
        return result

    # -- internals -----------------------------------------------------------
    def _offer_population(self, optimal_set: OptimalSet, population: Population) -> int:
        """Offer every row of ``population`` to Ω (vectorized pre-filter;
        ``Individual`` views are built only for accepted updates)."""
        problem = self._problem
        return optimal_set.offer_population(
            population, lambda index: problem.population_individual(population, index)
        )

    def _baseline_seed_population(self, rng: np.random.Generator) -> Population | None:
        """Warm-start population: Warner-family matrices (bound-repaired when
        a ``delta`` is configured), evaluated like any other candidates.

        Warner matrices are ordinary points of the search space; starting the
        optimal set Ω from the classic front and improving on it reproduces
        the behaviour the paper reaches after 20 000 random-start generations
        within the few hundred generations this reproduction runs by default.
        """
        config = self.config
        if config.baseline_seeds <= 0:
            return None
        from repro.rr.schemes import warner_matrix

        n = self.prior.n_categories
        # Sweep the full Warner family, p in [0, 1] (the same grid as the
        # baseline comparison); p below 1/n produces the "anti-diagonal"
        # branch that matters at the high-privacy end of the front.
        retention_values = np.linspace(0.0, 1.0, config.baseline_seeds)
        stack = np.stack(
            [warner_matrix(n, float(retention)).probabilities for retention in retention_values]
        )
        return self._problem.evaluate_population(self._problem.repair_stack(stack))

    def _make_offspring(
        self, archive: Population, rng: np.random.Generator, generation: int
    ) -> np.ndarray:
        """Mating selection, crossover, mutation and bound repair, producing
        the next population as a ``(population_size, n, n)`` stack.

        Mating selection reuses the fitness stored by this generation's
        environmental selection (the generation stamp guarantees freshness) —
        the list-based loop redundantly re-assigned SPEA2 fitness to the
        archive here every generation.
        """
        config = self.config
        problem = self._problem
        fitness = archive.require_fresh_fitness(generation)
        parents = binary_tournament_indices(fitness, config.population_size, rng)
        parent_stack = archive.genomes[parents]
        n_parents = parent_stack.shape[0]
        first_index = np.arange(0, n_parents, 2)
        first = parent_stack[first_index]
        second = parent_stack[(first_index + 1) % n_parents]
        crossed = rng.random(size=first.shape[0]) < config.crossover_rate
        child_a = first.copy()
        child_b = second.copy()
        if crossed.any():
            cross_a, cross_b = problem.crossover_stack(first[crossed], second[crossed], rng)
            child_a[crossed] = cross_a
            child_b[crossed] = cross_b
        children = np.empty((2 * first.shape[0], *parent_stack.shape[1:]))
        children[0::2] = child_a
        children[1::2] = child_b
        children = children[: config.population_size]
        mutated = rng.random(size=children.shape[0]) < config.mutation_rate
        if mutated.any():
            children[mutated] = problem.mutate_stack(children[mutated], rng)
        return problem.repair_stack(children)

    def _refresh_from_optimal_set(
        self, population: Population, optimal_set: OptimalSet
    ) -> None:
        """Replace evolving candidates with strictly better Ω occupants of the
        same privacy slot (the reverse direction of the Ω update).

        One vectorized comparison against Ω's slot-utility array finds the
        rows with a better occupant; only those rows are rewritten.  The
        replaced row keeps its selection fitness (see
        :meth:`Population.replace_row`).
        """
        feasible_rows = np.flatnonzero(population.feasible)
        if feasible_rows.size == 0:
            return
        slots = optimal_set.slots_of(population.metadata["privacy"][feasible_rows])
        occupant_utility = optimal_set.slot_utilities()[slots]
        better = occupant_utility < population.metadata["utility"][feasible_rows]
        for row, slot in zip(feasible_rows[better], slots[better]):
            occupant = optimal_set.best_for_slot(int(slot))
            if occupant is None:  # pragma: no cover - slot utility implies occupancy
                continue
            population.replace_row(
                int(row),
                genome=occupant.genome.probabilities,
                objectives=occupant.objectives,
                feasible=occupant.feasible,
                metadata=occupant.metadata,
            )