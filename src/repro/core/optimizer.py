"""The OptRR optimizer: SPEA2 customised for RR matrices (Section V).

The driver below follows the paper's algorithm outline:

1. *Fitness assignment* over the union of population and archive (SPEA2
   strength + raw fitness + density);
2. *Environmental selection* into a bounded archive with diversity-preserving
   truncation;
3. *Mating selection* by binary tournament;
4. *Crossover and mutation* with the RR-matrix-specific operators;
5. *Meeting the bound*: repair every offspring so ``max P(X|Y) <= delta``;
6. *Updating the three sets*: offer the archive and the offspring to the
   optimal set Ω (privacy-indexed), and inject Ω's best matrices back into
   the evolving sets so good discarded solutions keep participating;
7. *Termination*: a fixed generation budget and/or Ω-stagnation patience.

The whole loop is array-native: population and archive are
structure-of-arrays :class:`~repro.emoo.population.Population` objects whose
``(P, n, n)`` genome stack is built once per generation by the batch
evaluator and only sliced by index afterwards.  The pairwise
objective-distance matrix is computed once per generation and shared between
density estimation and archive truncation; mating selection reuses the
fitness environmental selection just assigned (stamped per generation, so
staleness is impossible) instead of re-running fitness assignment on the
archive.  ``Individual`` objects appear only at the result boundary and
inside Ω.  The pre-PR list-based loop is preserved verbatim in
:mod:`repro.core.reference` for equivalence tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable

import numpy as np

from repro.core.archive import OptimalSet
from repro.core.config import OptRRConfig
from repro.core.driver import (
    OptimizationDriver,
    StepOutcome,
    SteppableOptimization,
    build_driver,
    population_from_document,
    population_to_document,
    workload_fingerprint,
)
from repro.core.problem import SINGULAR_UTILITY_PENALTY, RRMatrixProblem
from repro.core.result import OptimizationResult
from repro.data.distribution import CategoricalDistribution
from repro.emoo.density import pairwise_distances
from repro.emoo.fidelity import FidelitySchedule, FidelityScheduler
from repro.emoo.fitness import spea2_fitness_from_arrays
from repro.emoo.individual import Individual
from repro.emoo.population import Population
from repro.emoo.selection import (
    binary_tournament_indices,
    environmental_selection_indices,
)
from repro.emoo.termination import (
    MaxGenerations,
    StagnationTermination,
    TerminationCriterion,
)
from repro.exceptions import ValidationError
from repro.metrics.privacy import check_bound_feasible
from repro.rr.matrix import RRMatrix
from repro.types import SeedLike, as_rng
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Progress callback invoked after each generation with
#: (generation index, archive, optimal set).
ProgressCallback = Callable[[int, list[Individual], OptimalSet], None]


@dataclass
class OptRROptimizer:
    """Search for Pareto-optimal RR matrices for a given data distribution.

    Parameters
    ----------
    prior:
        The original data distribution ``P(X)`` (a
        :class:`~repro.data.distribution.CategoricalDistribution` or a
        probability vector).
    n_records:
        Number of records ``N`` of the dataset to be disguised; enters the
        closed-form utility (Theorem 6).
    config:
        Optimization hyper-parameters, including the privacy bound ``delta``.

    Examples
    --------
    >>> from repro.data import normal_distribution
    >>> from repro.core import OptRRConfig, OptRROptimizer
    >>> prior = normal_distribution(5)
    >>> config = OptRRConfig(n_generations=20, delta=0.8, seed=7)
    >>> result = OptRROptimizer(prior, n_records=1000, config=config).run()
    >>> len(result) > 0
    True
    """

    prior: CategoricalDistribution
    n_records: int
    config: OptRRConfig = field(default_factory=OptRRConfig)

    def __post_init__(self) -> None:
        if not isinstance(self.prior, CategoricalDistribution):
            self.prior = CategoricalDistribution(np.asarray(self.prior, dtype=np.float64))
        if self.config.delta is not None:
            check_bound_feasible(self.prior.probabilities, self.config.delta)
        self._problem = RRMatrixProblem(
            prior=self.prior,
            n_records=self.n_records,
            delta=self.config.delta,
            mutation_scale=self.config.mutation_scale,
            diagonal_bias=self.config.diagonal_bias,
        )

    @property
    def problem(self) -> RRMatrixProblem:
        """The underlying EMOO problem (exposed for ablations and tests)."""
        return self._problem

    def _termination(self) -> TerminationCriterion:
        criterion: TerminationCriterion = MaxGenerations(self.config.n_generations)
        if self.config.stagnation_patience is not None:
            criterion = criterion | StagnationTermination(self.config.stagnation_patience)
        return criterion

    def run(
        self,
        *,
        seed: SeedLike = None,
        on_generation: ProgressCallback | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int | None = None,
        deadline: float | None = None,
    ) -> OptimizationResult:
        """Run the optimization and return the resulting Pareto front.

        Thin wrapper over the stepwise :meth:`driver`; the loop itself lives
        in :class:`~repro.core.driver.OptimizationDriver`.

        Parameters
        ----------
        seed:
            Overrides ``config.seed`` when provided.
        on_generation:
            Optional callback invoked after every generation.  The archive is
            materialised as ``Individual`` views only when a callback is
            registered.
        checkpoint_path:
            Write resumable ``checkpoint`` documents to this file (see
            :meth:`driver`); resuming goes through
            :meth:`from_checkpoint` + :meth:`OptimizationDriver.restore`.
        checkpoint_every:
            Checkpoint cadence in generations (default
            :data:`~repro.core.driver.DEFAULT_CHECKPOINT_EVERY`).
        deadline:
            Optional wall-clock budget in seconds, combined with the
            configured termination via ``|``.
        """
        driver = self.driver(
            seed=seed,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            deadline=deadline,
        )
        return self.run_driver(driver, on_generation=on_generation)

    def run_driver(
        self,
        driver: OptimizationDriver,
        *,
        on_generation: ProgressCallback | None = None,
    ) -> OptimizationResult:
        """Drive a (possibly restored) driver to termination."""
        algorithm = driver.optimization
        for snapshot in driver.steps():
            if on_generation is not None:
                on_generation(
                    snapshot.generation,
                    self._problem.population_to_individuals(algorithm.archive),
                    algorithm.optimal_set,
                )
        result = driver.result()
        logger.debug(
            "OptRR finished: %d generations, %d evaluations, front size %d, "
            "privacy range %s",
            result.n_generations,
            result.n_evaluations,
            len(result),
            result.privacy_range if len(result) else "n/a",
        )
        return result

    def driver(
        self,
        *,
        seed: SeedLike = None,
        termination: TerminationCriterion | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int | None = None,
        deadline: float | None = None,
    ) -> OptimizationDriver:
        """Build the stepwise driver for this optimizer.

        When neither ``checkpoint_path`` nor an explicit termination is
        given, the ambient :func:`~repro.core.driver.checkpoint_scope` (set
        by the cached-grid executor around every campaign cell) is consulted:
        the run claims a checkpoint file in the scope's directory, resumes
        automatically from a matching previous checkpoint, and honours the
        scope's remaining wall-clock deadline.
        """
        return build_driver(
            _OptRRSteppable(self),
            termination=termination if termination is not None else self._termination(),
            rng=as_rng(seed if seed is not None else self.config.seed),
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            deadline=deadline,
        )

    @classmethod
    def from_checkpoint(cls, document: dict) -> "OptRROptimizer":
        """Rebuild the optimizer a ``checkpoint`` document was written by.

        The checkpoint embeds the full workload setup (prior, record count,
        configuration), so ``optrr optimize --resume`` needs nothing but the
        checkpoint file.  Restore the run state itself with
        :meth:`OptimizationDriver.restore` on :meth:`driver`'s result.
        """
        from repro.utils.arrays import decode_array

        try:
            setup = document["state"]["setup"]
            prior = CategoricalDistribution(decode_array(setup["prior"]))
            config = OptRRConfig(**setup["config"])
            n_records = int(setup["n_records"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"unusable optrr checkpoint: {exc}") from exc
        return cls(prior, n_records, config)

    # -- internals -----------------------------------------------------------
    def _offer_population(self, optimal_set: OptimalSet, population: Population) -> int:
        """Offer every row of ``population`` to Ω (vectorized pre-filter;
        ``Individual`` views are built only for accepted updates)."""
        problem = self._problem
        return optimal_set.offer_population(
            population, lambda index: problem.population_individual(population, index)
        )

    def _baseline_seed_population(
        self, rng: np.random.Generator, *, fidelity: float | None = None
    ) -> Population | None:
        """Warm-start population: Warner-family matrices (bound-repaired when
        a ``delta`` is configured), evaluated like any other candidates.

        Warner matrices are ordinary points of the search space; starting the
        optimal set Ω from the classic front and improving on it reproduces
        the behaviour the paper reaches after 20 000 random-start generations
        within the few hundred generations this reproduction runs by default.
        """
        config = self.config
        if config.baseline_seeds <= 0:
            return None
        from repro.rr.schemes import warner_matrix

        n = self.prior.n_categories
        # Sweep the full Warner family, p in [0, 1] (the same grid as the
        # baseline comparison); p below 1/n produces the "anti-diagonal"
        # branch that matters at the high-privacy end of the front.
        retention_values = np.linspace(0.0, 1.0, config.baseline_seeds)
        stack = np.stack(
            [warner_matrix(n, float(retention)).probabilities for retention in retention_values]
        )
        return self._problem.evaluate_population(
            self._problem.repair_stack(stack), fidelity=fidelity
        )

    def _make_offspring(
        self, archive: Population, rng: np.random.Generator, generation: int
    ) -> np.ndarray:
        """Mating selection, crossover, mutation and bound repair, producing
        the next population as a ``(population_size, n, n)`` stack.

        Mating selection reuses the fitness stored by this generation's
        environmental selection (the generation stamp guarantees freshness) —
        the list-based loop redundantly re-assigned SPEA2 fitness to the
        archive here every generation.
        """
        config = self.config
        problem = self._problem
        fitness = archive.require_fresh_fitness(generation)
        parents = binary_tournament_indices(fitness, config.population_size, rng)
        parent_stack = archive.genomes[parents]
        n_parents = parent_stack.shape[0]
        first_index = np.arange(0, n_parents, 2)
        first = parent_stack[first_index]
        second = parent_stack[(first_index + 1) % n_parents]
        crossed = rng.random(size=first.shape[0]) < config.crossover_rate
        child_a = first.copy()
        child_b = second.copy()
        if crossed.any():
            cross_a, cross_b = problem.crossover_stack(first[crossed], second[crossed], rng)
            child_a[crossed] = cross_a
            child_b[crossed] = cross_b
        children = np.empty((2 * first.shape[0], *parent_stack.shape[1:]))
        children[0::2] = child_a
        children[1::2] = child_b
        children = children[: config.population_size]
        mutated = rng.random(size=children.shape[0]) < config.mutation_rate
        if mutated.any():
            children[mutated] = problem.mutate_stack(children[mutated], rng)
        return problem.repair_stack(children)

    def _refresh_from_optimal_set(
        self, population: Population, optimal_set: OptimalSet
    ) -> None:
        """Replace evolving candidates with strictly better Ω occupants of the
        same privacy slot (the reverse direction of the Ω update).

        One vectorized comparison against Ω's slot-utility array finds the
        rows with a better occupant; only those rows are rewritten.  The
        replaced row keeps its selection fitness (see
        :meth:`Population.replace_row`).
        """
        feasible_rows = np.flatnonzero(population.feasible)
        if feasible_rows.size == 0:
            return
        slots = optimal_set.slots_of(population.metadata["privacy"][feasible_rows])
        occupant_utility = optimal_set.slot_utilities()[slots]
        better = occupant_utility < population.metadata["utility"][feasible_rows]
        for row, slot in zip(feasible_rows[better], slots[better]):
            occupant = optimal_set.best_for_slot(int(slot))
            if occupant is None:  # pragma: no cover - slot utility implies occupancy
                continue
            population.replace_row(
                int(row),
                genome=occupant.genome.probabilities,
                objectives=occupant.objectives,
                feasible=occupant.feasible,
                metadata=occupant.metadata,
            )


class _OptRRSteppable(SteppableOptimization):
    """The OptRR generation loop decomposed for the stepwise driver.

    Holds the evolving state (population, archive, optimal set Ω) between
    :meth:`step` calls; the variation/selection internals stay on
    :class:`OptRROptimizer`.  The RNG draw order is identical to the former
    monolithic ``run()`` loop, so fixed-seed trajectories are unchanged.
    """

    algorithm_name = "optrr"

    def __init__(self, optimizer: OptRROptimizer) -> None:
        self._optimizer = optimizer
        self._problem = optimizer.problem
        self._config = optimizer.config
        self.population: Population | None = None
        self.archive: Population | None = None
        self.optimal_set: OptimalSet | None = None
        # Multi-fidelity scheduling (repro.emoo.fidelity): only constructed
        # when the configuration actually reduces the fidelity, so disabled
        # runs keep the exact single-fidelity code path and checkpoint layout.
        self.fidelity: FidelityScheduler | None = None
        if optimizer.config.low_fidelity_fraction < 1.0:
            self.fidelity = FidelityScheduler(
                FidelitySchedule(
                    low_fidelity=optimizer.config.low_fidelity_fraction,
                    promotion_fraction=optimizer.config.promotion_fraction,
                    min_fidelity=optimizer.config.min_fidelity,
                )
            )
        # The workload identity is immutable; cache its serializations so
        # per-generation checkpoints don't recompute them.
        self._fingerprint: str | None = None
        self._setup_document: dict | None = None

    def setup(self, rng: np.random.Generator) -> None:
        optimizer = self._optimizer
        config = self._config
        # In fidelity-scheduled runs every population carries a ``fidelity``
        # metadata column (Population.concat requires identical key sets);
        # the setup populations are evaluated at full fidelity.
        setup_fidelity = 1.0 if self.fidelity is not None else None
        population = self._problem.initial_population_soa(
            config.population_size, rng, fidelity=setup_fidelity
        )
        baseline = optimizer._baseline_seed_population(rng, fidelity=setup_fidelity)
        optimal_set = OptimalSet(config.optimal_set_size)
        optimizer._offer_population(optimal_set, population)
        # The full baseline sweep goes straight into Ω (O(1) per matrix); only
        # a thin, evenly spaced subset joins the evolving population so the
        # per-generation selection cost stays bounded.
        if baseline is not None:
            optimizer._offer_population(optimal_set, baseline)
            stride = max(1, baseline.size // 25)
            population = Population.concat(
                population, baseline.take(np.arange(0, baseline.size, stride))
            )
        self.population = population
        self.archive = None
        self.optimal_set = optimal_set

    def step(self, rng: np.random.Generator, generation: int) -> StepOutcome:
        optimizer = self._optimizer
        config = self._config
        problem = self._problem
        optimal_set = self.optimal_set
        # 1-2. Fitness assignment + environmental selection on Q_t + V_t.
        # The pairwise distance matrix is computed once and shared between
        # the density estimator and (via slicing) archive truncation.
        union = (
            self.population
            if self.archive is None
            else Population.concat(self.population, self.archive)
        )
        distances = pairwise_distances(union.objectives)
        _, _, fitness = spea2_fitness_from_arrays(
            union.objectives, union.feasible, config.density_k, distances=distances
        )
        selected = environmental_selection_indices(
            fitness, config.archive_size, distances=distances
        )
        archive = union.take(selected)
        archive.set_fitness(fitness[selected], generation)
        # 3-5. Mating selection, crossover, mutation, bound repair — the
        # whole offspring generation moves as one (B, n, n) stack.
        offspring_stack = optimizer._make_offspring(archive, rng, generation)
        if self.fidelity is None:
            population = problem.evaluate_population(offspring_stack)
        else:
            population = self.fidelity.evaluate_stack(problem, offspring_stack)
        # 6. Update the three sets: Ω absorbs the new generation, and the
        # archive/population are refreshed with Ω's best matrices for the
        # privacy levels they already occupy.  Low-fidelity rows carry
        # *upper-bound* utilities and are never offered to Ω — only
        # full-fidelity evaluations may enter the long-term store.
        updates = optimizer._offer_population(
            optimal_set, self._full_fidelity_rows(population)
        )
        updates += optimizer._offer_population(
            optimal_set, self._full_fidelity_rows(archive)
        )
        optimizer._refresh_from_optimal_set(population, optimal_set)
        optimizer._refresh_from_optimal_set(archive, optimal_set)
        self.population = population
        self.archive = archive
        front = archive.objectives[archive.feasible]
        if front.shape[0] == 0:
            front = archive.objectives
        return StepOutcome(
            archive_updates=updates,
            front_objectives=front,
            n_evaluations=problem.n_evaluations,
            n_full_evaluations=problem.n_full_evaluations,
            n_low_evaluations=problem.n_low_evaluations,
        )

    @staticmethod
    def _full_fidelity_rows(population: Population) -> Population:
        """Restrict to rows evaluated at full fidelity (the whole population
        when no fidelity column exists, i.e. fidelity scheduling is off)."""
        column = population.metadata.get("fidelity")
        if column is None:
            return population
        return population.take(np.flatnonzero(column >= 1.0))

    def notify_progress(self, elapsed_seconds: float, deadline_seconds: float | None) -> None:
        if self.fidelity is not None:
            self.fidelity.adapt(elapsed_seconds, deadline_seconds)

    def finish(self, generation: int) -> OptimizationResult:
        front = self.optimal_set.pareto_members()
        if not front:
            # No feasible matrix was ever found (possible only with an
            # extremely tight delta); fall back to the archive so the caller
            # still gets diagnostics.
            front = self._problem.population_to_individuals(self.archive)
        return OptimizationResult.from_individuals(
            front,
            self.optimal_set.members(),
            n_generations=generation + 1,
            n_evaluations=self._problem.n_evaluations,
        )

    def elite_individuals(self) -> list[Individual]:
        return self._problem.population_to_individuals(self.archive)

    def hypervolume_reference(self) -> tuple[float, float]:
        # Objectives are (-privacy, utility-with-singular-penalty): privacy
        # cannot exceed 1 and the penalty bounds the utility axis.
        return (0.0, SINGULAR_UTILITY_PENALTY)

    def setup_fingerprint(self) -> str:
        if self._fingerprint is not None:
            return self._fingerprint
        config = asdict(self._config)
        # Stopping-rule and seeding fields are not workload identity: a
        # checkpoint may legitimately resume under an extended budget.
        for key in ("n_generations", "stagnation_patience", "seed"):
            config.pop(key, None)
        from repro.utils.arrays import encode_array

        self._fingerprint = workload_fingerprint(
            {
                "algorithm": self.algorithm_name,
                "prior": encode_array(self._optimizer.prior.probabilities),
                "n_records": self._optimizer.n_records,
                "config": config,
            }
        )
        return self._fingerprint

    def state_document(self) -> dict:
        from repro.utils.arrays import encode_array

        if self._setup_document is None:
            self._setup_document = {
                "prior": encode_array(self._optimizer.prior.probabilities),
                "n_records": self._optimizer.n_records,
                "config": asdict(self._config),
            }
        document = {
            # "setup" is read by OptRROptimizer.from_checkpoint (which must
            # rebuild the optimizer *before* a restore_state target exists),
            # not by restore_state itself — an intentional asymmetry.
            "setup": self._setup_document,  # repro-lint: allow[checkpoint-symmetry]
            "problem": self._problem.counters_document(),
            "population": population_to_document(self.population),
            "archive": (
                population_to_document(self.archive) if self.archive is not None else None
            ),
            "optimal_set": self.optimal_set.state_document(),
        }
        # Only fidelity-scheduled runs carry scheduler state.
        if self.fidelity is not None:
            document["fidelity"] = self.fidelity.state_document()
        return document

    def restore_state(self, document: dict) -> None:
        self._problem.restore_counters(document["problem"])
        fidelity_state = document.get("fidelity")
        if self.fidelity is not None and fidelity_state is not None:
            self.fidelity.restore_state(fidelity_state)
        self.population = population_from_document(document["population"])
        archive_document = document.get("archive")
        self.archive = (
            population_from_document(archive_document)
            if archive_document is not None
            else None
        )
        optimal_set = OptimalSet(int(document["optimal_set"]["size"]))
        optimal_set.restore_state(document["optimal_set"], RRMatrix.from_validated)
        self.optimal_set = optimal_set