"""RR-matrix variation operators (Sections V-E, V-F and V-G of the paper).

All operators take and return :class:`~repro.rr.matrix.RRMatrix` instances
and preserve the column-stochastic constraint:

* **column crossover** — pick a random boundary between two columns and swap
  everything to its right between the two parents (Figure 3 in the paper);
* **proportional column mutation** — pick a column and an element, add or
  subtract a small random value, and rescale the remaining elements of the
  column proportionally (to their values when mass must be removed, to
  ``1 - value`` when mass must be added) so the column still sums to one;
* **privacy-bound repair** — shrink the matrix entries responsible for
  posteriors above ``delta`` and redistribute the removed mass within the
  same column, iterating until the worst posterior meets the bound (or a
  small iteration budget is exhausted).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.metrics.privacy import posterior_matrix
from repro.rr.matrix import RRMatrix, random_rr_matrix
from repro.types import SeedLike, as_rng
from repro.utils.validation import check_in_unit_interval, check_positive_int

#: Tiny value used to keep columns strictly positive where renormalisation
#: would otherwise divide by zero.
_EPSILON = 1e-12


def column_crossover(
    first: RRMatrix,
    second: RRMatrix,
    rng: SeedLike = None,
) -> tuple[RRMatrix, RRMatrix]:
    """Swap the columns to the right of a random boundary between two parents.

    Because whole columns are exchanged, both children remain
    column-stochastic by construction.
    """
    if first.n_categories != second.n_categories:
        raise ValidationError("parents must have the same domain size")
    n = first.n_categories
    generator = as_rng(rng)
    # A boundary after column `cut` (1 .. n-1); swapping after column n would
    # be a no-op and after column 0 would swap everything (also allowed by the
    # paper's figure, but it just exchanges the parents), so we restrict to
    # boundaries that actually mix genetic material.
    if n < 2:
        return first, second
    cut = int(generator.integers(1, n))
    child_a = first.as_array()
    child_b = second.as_array()
    child_a[:, cut:], child_b[:, cut:] = child_b[:, cut:].copy(), child_a[:, cut:].copy()
    return RRMatrix(child_a), RRMatrix(child_b)


def _rebalance_column(column: np.ndarray, changed: int, delta: float) -> np.ndarray:
    """Apply ``delta`` to ``column[changed]`` and redistribute ``-delta`` over
    the remaining entries, proportionally to their values when removing mass
    and proportionally to ``1 - value`` when adding mass.

    This is the paper's mutation rebalancing rule; it keeps every entry in
    ``[0, 1]`` and the column sum at one.
    """
    column = column.astype(np.float64).copy()
    n = column.size
    others = np.arange(n) != changed
    column[changed] = column[changed] + delta
    if delta > 0:
        # Mass was added to the changed element: remove `delta` from the other
        # elements proportionally to their current values.
        weights = column[others]
        total = weights.sum()
        if total <= _EPSILON:
            # Nothing to take from; undo the change.
            column[changed] -= delta
            return column
        column[others] = weights - delta * (weights / total)
    else:
        # Mass was removed from the changed element: add `-delta` to the other
        # elements proportionally to (1 - value).
        headroom = 1.0 - column[others]
        total = headroom.sum()
        if total <= _EPSILON:
            column[changed] -= delta
            return column
        column[others] = column[others] + (-delta) * (headroom / total)
    column = np.clip(column, 0.0, 1.0)
    column_sum = column.sum()
    if column_sum <= 0:
        return np.full(n, 1.0 / n)
    return column / column_sum


def proportional_column_mutation(
    matrix: RRMatrix,
    rng: SeedLike = None,
    *,
    scale: float = 0.3,
) -> RRMatrix:
    """Mutate one column of ``matrix`` as described in Section V-F.

    A random element of a random column is perturbed by a random amount in
    ``(0, scale]`` (added or subtracted, clipped so the element stays in
    ``[0, 1]``) and the rest of the column is rescaled proportionally.
    """
    check_in_unit_interval(scale, "scale", inclusive_low=False)
    generator = as_rng(rng)
    n = matrix.n_categories
    column_index = int(generator.integers(0, n))
    element_index = int(generator.integers(0, n))
    column = matrix.column(column_index)
    magnitude = float(generator.uniform(0.0, scale))
    add = bool(generator.integers(0, 2))
    if add:
        delta = min(magnitude, 1.0 - column[element_index])
    else:
        delta = -min(magnitude, column[element_index])
    if abs(delta) <= _EPSILON:
        # The element is already saturated in the chosen direction; flip it.
        delta = -delta if delta != 0 else (
            min(magnitude, 1.0 - column[element_index])
            or -min(magnitude, column[element_index])
        )
        if abs(delta) <= _EPSILON:
            return matrix
    mutated_column = _rebalance_column(column, element_index, delta)
    return matrix.replace_column(column_index, mutated_column)


def enforce_privacy_bound(
    matrix: RRMatrix,
    prior: np.ndarray,
    delta: float,
    *,
    max_passes: int = 50,
    tolerance: float = 1e-9,
) -> RRMatrix:
    """Repair ``matrix`` so that ``max P(X | Y) <= delta`` (Section V-G).

    For every posterior ``P(X = c_j | Y = c_i)`` above the bound, the entry
    ``theta[i, j]`` is reduced towards the value that makes the posterior
    exactly ``delta`` and the removed mass is redistributed over the other
    entries of column ``j`` proportionally to ``1 - value``.  Because the
    posteriors of a column interact, the procedure iterates up to
    ``max_passes`` times; matrices that cannot be repaired (e.g. when
    ``delta < max P(X)``, which Theorem 5 proves impossible to satisfy) are
    returned in their best-effort state and the evaluator marks them
    infeasible.
    """
    check_in_unit_interval(delta, "delta", inclusive_low=False)
    check_positive_int(max_passes, "max_passes")
    prior = np.asarray(prior, dtype=np.float64)
    values = matrix.as_array()
    n = matrix.n_categories
    for _ in range(max_passes):
        posterior = posterior_matrix(values, prior)
        worst = posterior.max()
        if worst <= delta + tolerance:
            break
        # Visit every violating (report i, original j) pair.
        report_index, original_index = np.unravel_index(np.argmax(posterior), posterior.shape)
        i, j = int(report_index), int(original_index)
        # Posterior(i, j) = theta[i, j] p_j / sum_l theta[i, l] p_l.
        # Solving Posterior = delta for theta[i, j] with the other entries of
        # row i fixed gives the target value below.
        row_rest = float(values[i, :] @ prior - values[i, j] * prior[j])
        if prior[j] <= _EPSILON:
            break
        target = delta * row_rest / (prior[j] * (1.0 - delta)) if delta < 1.0 else values[i, j]
        target = float(np.clip(target, 0.0, values[i, j]))
        removed = values[i, j] - target
        if removed <= _EPSILON:
            # Cannot reduce further (the prior alone already violates delta).
            break
        column = values[:, j].copy()
        column[i] = target
        others = np.arange(n) != i
        headroom = 1.0 - column[others]
        total_headroom = headroom.sum()
        if total_headroom <= _EPSILON:
            break
        column[others] = column[others] + removed * (headroom / total_headroom)
        column = np.clip(column, 0.0, 1.0)
        column_sum = column.sum()
        if column_sum <= 0:
            break
        values[:, j] = column / column_sum
    return RRMatrix(values)


def random_initial_matrix(
    n_categories: int,
    rng: SeedLike = None,
    *,
    kind: int = 0,
    diagonal_bias: float = 2.0,
) -> RRMatrix:
    """Generate one random initial matrix of the given ``kind``.

    Three kinds are mixed into the initial population so it spans the whole
    privacy/utility trade-off from the first generation:

    * ``kind % 3 == 0`` — plain flat-Dirichlet columns (moderate privacy);
    * ``kind % 3 == 1`` — diagonally biased columns (low privacy, low MSE,
      near the identity matrix);
    * ``kind % 3 == 2`` — a blend of the uniform matrix and Dirichlet noise
      (high privacy, near total randomization, but still invertible).
    """
    check_positive_int(n_categories, "n_categories")
    generator = as_rng(rng)
    mode = kind % 3
    if mode == 1 and diagonal_bias > 0:
        bias = float(generator.uniform(0.0, diagonal_bias * n_categories))
        return random_rr_matrix(n_categories, seed=generator, diagonal_bias=bias)
    if mode == 2:
        noise = generator.dirichlet(np.ones(n_categories), size=n_categories).T
        weight = float(generator.uniform(0.02, 0.5))
        blended = (1.0 - weight) * np.full((n_categories, n_categories), 1.0 / n_categories)
        blended = blended + weight * noise
        return RRMatrix(blended / blended.sum(axis=0, keepdims=True))
    return random_rr_matrix(n_categories, seed=generator)


def random_initial_matrices(
    n_categories: int,
    population_size: int,
    rng: SeedLike = None,
    *,
    diagonal_bias: float = 2.0,
) -> list[RRMatrix]:
    """Generate the initial population ``Q_0``.

    The population mixes plain random, diagonally-biased and near-uniform
    matrices (see :func:`random_initial_matrix`) so the initial front already
    spans the trade-off from near-total randomization to near-identity.
    """
    check_positive_int(n_categories, "n_categories")
    check_positive_int(population_size, "population_size")
    generator = as_rng(rng)
    return [
        random_initial_matrix(
            n_categories, generator, kind=index, diagonal_bias=diagonal_bias
        )
        for index in range(population_size)
    ]
