"""RR-matrix variation operators (Sections V-E, V-F and V-G of the paper).

All operators take and return :class:`~repro.rr.matrix.RRMatrix` instances
and preserve the column-stochastic constraint:

* **column crossover** — pick a random boundary between two columns and swap
  everything to its right between the two parents (Figure 3 in the paper);
* **proportional column mutation** — pick a column and an element, add or
  subtract a small random value, and rescale the remaining elements of the
  column proportionally (to their values when mass must be removed, to
  ``1 - value`` when mass must be added) so the column still sums to one;
* **privacy-bound repair** — shrink the matrix entries responsible for
  posteriors above ``delta`` and redistribute the removed mass within the
  same column, iterating until the worst posterior meets the bound (or a
  small iteration budget is exhausted).
"""

from __future__ import annotations

import numpy as np

from repro.backend.registry import active_backend
from repro.exceptions import ValidationError
from repro.metrics.privacy import posterior_matrix
from repro.rr.matrix import RRMatrix, random_rr_matrix
from repro.types import SeedLike, as_rng
from repro.utils.validation import (
    check_in_unit_interval,
    check_matrix_stack,
    check_positive_int,
)

#: Tiny value used to keep columns strictly positive where renormalisation
#: would otherwise divide by zero.
_EPSILON = 1e-12


def column_crossover(
    first: RRMatrix,
    second: RRMatrix,
    rng: SeedLike = None,
) -> tuple[RRMatrix, RRMatrix]:
    """Swap the columns to the right of a random boundary between two parents.

    Because whole columns are exchanged, both children remain
    column-stochastic by construction.
    """
    if first.n_categories != second.n_categories:
        raise ValidationError("parents must have the same domain size")
    n = first.n_categories
    generator = as_rng(rng)
    # A boundary after column `cut` (1 .. n-1); swapping after column n would
    # be a no-op and after column 0 would swap everything (also allowed by the
    # paper's figure, but it just exchanges the parents), so we restrict to
    # boundaries that actually mix genetic material.
    if n < 2:
        return first, second
    cut = int(generator.integers(1, n))
    child_a = first.as_array()
    child_b = second.as_array()
    child_a[:, cut:], child_b[:, cut:] = child_b[:, cut:].copy(), child_a[:, cut:].copy()
    return RRMatrix(child_a), RRMatrix(child_b)


def _rebalance_column(column: np.ndarray, changed: int, delta: float) -> np.ndarray:
    """Apply ``delta`` to ``column[changed]`` and redistribute ``-delta`` over
    the remaining entries, proportionally to their values when removing mass
    and proportionally to ``1 - value`` when adding mass.

    This is the paper's mutation rebalancing rule; it keeps every entry in
    ``[0, 1]`` and the column sum at one.
    """
    column = column.astype(np.float64).copy()
    n = column.size
    others = np.arange(n) != changed
    column[changed] = column[changed] + delta
    if delta > 0:
        # Mass was added to the changed element: remove `delta` from the other
        # elements proportionally to their current values.
        weights = column[others]
        total = weights.sum()
        if total <= _EPSILON:
            # Nothing to take from; undo the change.
            column[changed] -= delta
            return column
        column[others] = weights - delta * (weights / total)
    else:
        # Mass was removed from the changed element: add `-delta` to the other
        # elements proportionally to (1 - value).
        headroom = 1.0 - column[others]
        total = headroom.sum()
        if total <= _EPSILON:
            column[changed] -= delta
            return column
        column[others] = column[others] + (-delta) * (headroom / total)
    column = np.clip(column, 0.0, 1.0)
    column_sum = column.sum()
    if column_sum <= 0:
        return np.full(n, 1.0 / n)
    return column / column_sum


def proportional_column_mutation(
    matrix: RRMatrix,
    rng: SeedLike = None,
    *,
    scale: float = 0.3,
) -> RRMatrix:
    """Mutate one column of ``matrix`` as described in Section V-F.

    A random element of a random column is perturbed by a random amount in
    ``(0, scale]`` (added or subtracted, clipped so the element stays in
    ``[0, 1]``) and the rest of the column is rescaled proportionally.
    """
    check_in_unit_interval(scale, "scale", inclusive_low=False)
    generator = as_rng(rng)
    n = matrix.n_categories
    column_index = int(generator.integers(0, n))
    element_index = int(generator.integers(0, n))
    column = matrix.column(column_index)
    magnitude = float(generator.uniform(0.0, scale))
    add = bool(generator.integers(0, 2))
    if add:
        delta = min(magnitude, 1.0 - column[element_index])
    else:
        delta = -min(magnitude, column[element_index])
    if abs(delta) <= _EPSILON:
        # The element is already saturated in the chosen direction; flip it.
        delta = -delta if delta != 0 else (
            min(magnitude, 1.0 - column[element_index])
            or -min(magnitude, column[element_index])
        )
        if abs(delta) <= _EPSILON:
            return matrix
    mutated_column = _rebalance_column(column, element_index, delta)
    return matrix.replace_column(column_index, mutated_column)


def enforce_privacy_bound(
    matrix: RRMatrix,
    prior: np.ndarray,
    delta: float,
    *,
    max_passes: int = 50,
    tolerance: float = 1e-9,
) -> RRMatrix:
    """Repair ``matrix`` so that ``max P(X | Y) <= delta`` (Section V-G).

    For every posterior ``P(X = c_j | Y = c_i)`` above the bound, the entry
    ``theta[i, j]`` is reduced towards the value that makes the posterior
    exactly ``delta`` and the removed mass is redistributed over the other
    entries of column ``j`` proportionally to ``1 - value``.  Because the
    posteriors of a column interact (shrinking ``theta[i, j]`` shrinks row
    ``i``'s normaliser, which *raises* the other posteriors of that report,
    and the redistributed mass raises posteriors elsewhere in column ``j``),
    a single pass can overshoot, so the procedure iterates up to
    ``max_passes`` times and returns the *best state seen* — the visited
    matrix with the smallest worst-case posterior, which is never worse than
    the input.  Matrices that cannot be repaired (e.g. when
    ``delta < max P(X)``, which Theorem 5 proves impossible to satisfy) are
    returned in their best-effort state and the evaluator marks them
    infeasible.
    """
    check_in_unit_interval(delta, "delta", inclusive_low=False)
    check_positive_int(max_passes, "max_passes")
    prior = np.asarray(prior, dtype=np.float64)
    values = matrix.as_array()
    n = matrix.n_categories
    best_values = values
    best_worst = np.inf
    for pass_index in range(max_passes + 1):
        posterior = posterior_matrix(values, prior)
        worst = float(posterior.max())
        if worst < best_worst:
            best_worst = worst
            best_values = values.copy()
        if worst <= delta + tolerance or pass_index == max_passes:
            break
        # Visit the worst violating (report i, original j) pair.
        report_index, original_index = np.unravel_index(np.argmax(posterior), posterior.shape)
        i, j = int(report_index), int(original_index)
        # Posterior(i, j) = theta[i, j] p_j / sum_l theta[i, l] p_l.
        # Solving Posterior = delta for theta[i, j] with the other entries of
        # row i fixed gives the target value below.
        row_rest = float(values[i, :] @ prior - values[i, j] * prior[j])
        if prior[j] <= _EPSILON:
            break
        target = delta * row_rest / (prior[j] * (1.0 - delta)) if delta < 1.0 else values[i, j]
        target = float(np.clip(target, 0.0, values[i, j]))
        removed = values[i, j] - target
        if removed <= _EPSILON:
            # Cannot reduce further (the prior alone already violates delta).
            break
        column = values[:, j].copy()
        column[i] = target
        others = np.arange(n) != i
        headroom = 1.0 - column[others]
        total_headroom = headroom.sum()
        if total_headroom <= _EPSILON:
            break
        column[others] = column[others] + removed * (headroom / total_headroom)
        column = np.clip(column, 0.0, 1.0)
        column_sum = column.sum()
        if column_sum <= 0:
            break
        values[:, j] = column / column_sum
    return RRMatrix(best_values)


# -- batched variants ---------------------------------------------------------
#
# The batch-evaluation engine moves whole populations through the variation
# pipeline as (B, n, n) stacks.  The batched operators draw their randomness
# here — in the exact order the reference implementation draws it, so backend
# choice can never perturb the seeded RNG stream — and hand the pre-drawn
# arrays to the RNG-free kernels of the active array backend
# (:mod:`repro.backend`); the scalar functions remain the per-matrix
# reference implementations.


def column_crossover_batch(
    first: np.ndarray,
    second: np.ndarray,
    rng: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched column crossover: one random boundary per parent pair.

    ``first`` and ``second`` are ``(P, n, n)`` stacks of paired parents; both
    children of every pair are returned as stacks.  Whole columns are swapped,
    so the children stay column-stochastic by construction.
    """
    first = check_matrix_stack(first, "first")
    second = check_matrix_stack(second, "second")
    if first.shape != second.shape:
        raise ValidationError(
            f"parent stacks must have the same shape, got {first.shape} and {second.shape}"
        )
    n = first.shape[-1]
    if first.shape[0] == 0 or n < 2:
        return first.copy(), second.copy()
    generator = as_rng(rng)
    cuts = generator.integers(1, n, size=first.shape[0])
    return active_backend().crossover_columns(first, second, cuts)


def _rebalance_columns_batch(
    columns: np.ndarray, changed: np.ndarray, delta: np.ndarray
) -> np.ndarray:
    """Batched :func:`_rebalance_column`: apply ``delta[b]`` to
    ``columns[b, changed[b]]`` and redistribute ``-delta[b]`` over the other
    entries of each column, with the same undo/clip/renormalise rules.

    The implementation lives on the reference backend (it is the heart of the
    ``mutate_stack`` kernel); this alias keeps the reference helper importable
    next to :func:`_rebalance_column` for the equivalence tests.
    """
    from repro.backend.numpy_backend import NumpyBackend

    return NumpyBackend._rebalance_columns(
        np.asarray(columns, dtype=np.float64), changed, delta
    )


def proportional_column_mutation_batch(
    stack: np.ndarray,
    rng: SeedLike = None,
    *,
    scale: float = 0.3,
) -> np.ndarray:
    """Batched proportional column mutation: one mutation per matrix.

    For every matrix in the ``(B, n, n)`` stack a random element of a random
    column is perturbed and the rest of the column is rescaled, exactly as in
    :func:`proportional_column_mutation` (including the saturation-flip rule);
    only the random draws are vectorized.  All draws happen here, in the
    reference order; the deterministic rebalancing runs on the active backend.
    """
    check_in_unit_interval(scale, "scale", inclusive_low=False)
    stack = check_matrix_stack(stack, "stack")
    batch_size, n, _ = stack.shape
    if batch_size == 0:
        return stack.copy()
    generator = as_rng(rng)
    column_indices = generator.integers(0, n, size=batch_size)
    element_indices = generator.integers(0, n, size=batch_size)
    magnitudes = generator.uniform(0.0, scale, size=batch_size)
    add = generator.integers(0, 2, size=batch_size).astype(bool)
    return active_backend().mutate_stack(
        stack, column_indices, element_indices, magnitudes, add
    )


def enforce_privacy_bound_batch(
    stack: np.ndarray,
    prior: np.ndarray,
    delta: float,
    *,
    max_passes: int = 50,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """Batched :func:`enforce_privacy_bound` over a ``(B, n, n)`` stack.

    Each matrix follows the same trajectory as the scalar repair: per pass
    the worst violating posterior cell is relaxed towards ``delta`` and the
    removed mass is redistributed within its column; matrices that meet the
    bound (or hit one of the scalar early-exit conditions) drop out of the
    active set, and every matrix returns the best state it visited, so the
    worst-case posterior never increases.  The repair is fully deterministic
    and runs as a kernel of the active backend.
    """
    check_in_unit_interval(delta, "delta", inclusive_low=False)
    check_positive_int(max_passes, "max_passes")
    prior = np.asarray(prior, dtype=np.float64)
    stack = check_matrix_stack(stack, "stack")
    return active_backend().repair_stack(
        stack, prior, delta, max_passes=max_passes, tolerance=tolerance
    )


def random_initial_matrix(
    n_categories: int,
    rng: SeedLike = None,
    *,
    kind: int = 0,
    diagonal_bias: float = 2.0,
) -> RRMatrix:
    """Generate one random initial matrix of the given ``kind``.

    Three kinds are mixed into the initial population so it spans the whole
    privacy/utility trade-off from the first generation:

    * ``kind % 3 == 0`` — plain flat-Dirichlet columns (moderate privacy);
    * ``kind % 3 == 1`` — diagonally biased columns (low privacy, low MSE,
      near the identity matrix);
    * ``kind % 3 == 2`` — a blend of the uniform matrix and Dirichlet noise
      (high privacy, near total randomization, but still invertible).
    """
    check_positive_int(n_categories, "n_categories")
    generator = as_rng(rng)
    mode = kind % 3
    if mode == 1 and diagonal_bias > 0:
        bias = float(generator.uniform(0.0, diagonal_bias * n_categories))
        return random_rr_matrix(n_categories, seed=generator, diagonal_bias=bias)
    if mode == 2:
        noise = generator.dirichlet(np.ones(n_categories), size=n_categories).T
        weight = float(generator.uniform(0.02, 0.5))
        blended = (1.0 - weight) * np.full((n_categories, n_categories), 1.0 / n_categories)
        blended = blended + weight * noise
        return RRMatrix(blended / blended.sum(axis=0, keepdims=True))
    return random_rr_matrix(n_categories, seed=generator)


def random_initial_matrices(
    n_categories: int,
    population_size: int,
    rng: SeedLike = None,
    *,
    diagonal_bias: float = 2.0,
) -> list[RRMatrix]:
    """Generate the initial population ``Q_0``.

    The population mixes plain random, diagonally-biased and near-uniform
    matrices (see :func:`random_initial_matrix`) so the initial front already
    spans the trade-off from near-total randomization to near-identity.
    """
    check_positive_int(n_categories, "n_categories")
    check_positive_int(population_size, "population_size")
    generator = as_rng(rng)
    return [
        random_initial_matrix(
            n_categories, generator, kind=index, diagonal_bias=diagonal_bias
        )
        for index in range(population_size)
    ]
