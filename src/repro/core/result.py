"""Result objects returned by the OptRR optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.emoo.individual import Individual
from repro.exceptions import OptimizationError
from repro.rr.matrix import RRMatrix


@dataclass(frozen=True)
class ParetoPoint:
    """One point on the optimized privacy/utility front.

    Attributes
    ----------
    matrix:
        The RR matrix achieving this trade-off.
    privacy:
        Privacy score (Eq. 8); larger is better.
    utility:
        Average closed-form MSE (Eq. 10); smaller is better.
    max_posterior:
        Worst-case posterior of the matrix (Eq. 9 left-hand side).
    """

    matrix: RRMatrix
    privacy: float
    utility: float
    max_posterior: float

    @classmethod
    def from_individual(cls, individual: Individual) -> "ParetoPoint":
        """Convert an optimizer individual into a Pareto point."""
        metadata = individual.metadata
        return cls(
            matrix=individual.genome,
            privacy=float(metadata["privacy"]),
            utility=float(metadata["utility"]),
            max_posterior=float(metadata.get("max_posterior", float("nan"))),
        )


@dataclass(frozen=True)
class OptimizationResult:
    """Full result of an OptRR run.

    Attributes
    ----------
    points:
        Non-dominated points recovered from the optimal set Ω, sorted by
        increasing privacy.
    optimal_set_points:
        All occupied Ω slots (dominated ones included) — the "detailed
        spectrum" the paper says Ω provides.
    n_generations:
        Number of generations executed.
    n_evaluations:
        Number of matrix evaluations performed.
    """

    points: tuple[ParetoPoint, ...]
    optimal_set_points: tuple[ParetoPoint, ...] = field(default=())
    n_generations: int = 0
    n_evaluations: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.points, key=lambda point: point.privacy))
        object.__setattr__(self, "points", ordered)
        object.__setattr__(self, "optimal_set_points", tuple(self.optimal_set_points))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[ParetoPoint]:
        return iter(self.points)

    # -- views ------------------------------------------------------------------
    def privacy_values(self) -> np.ndarray:
        """Privacy of every front point (ascending)."""
        return np.array([point.privacy for point in self.points])

    def utility_values(self) -> np.ndarray:
        """Utility (MSE) of every front point, aligned with
        :meth:`privacy_values`."""
        return np.array([point.utility for point in self.points])

    def objectives(self) -> np.ndarray:
        """Front as an ``(n_points, 2)`` array of ``(privacy, utility)``."""
        return np.column_stack([self.privacy_values(), self.utility_values()])

    @property
    def privacy_range(self) -> tuple[float, float]:
        """Smallest and largest privacy achieved on the front."""
        if not self.points:
            raise OptimizationError("the result contains no Pareto points")
        privacies = self.privacy_values()
        return float(privacies.min()), float(privacies.max())

    # -- queries ------------------------------------------------------------------
    def best_matrix_for_privacy(self, min_privacy: float) -> ParetoPoint:
        """The lowest-MSE point with privacy at least ``min_privacy``."""
        candidates = [point for point in self.points if point.privacy >= min_privacy]
        if not candidates:
            raise OptimizationError(
                f"no optimized matrix achieves privacy >= {min_privacy}; "
                f"the front covers {self.privacy_range}"
            )
        return min(candidates, key=lambda point: point.utility)

    def best_matrix_for_utility(self, max_utility: float) -> ParetoPoint:
        """The highest-privacy point with utility (MSE) at most ``max_utility``."""
        candidates = [point for point in self.points if point.utility <= max_utility]
        if not candidates:
            raise OptimizationError(
                f"no optimized matrix achieves utility <= {max_utility}"
            )
        return max(candidates, key=lambda point: point.privacy)

    @staticmethod
    def from_individuals(
        front: Sequence[Individual],
        optimal_set: Sequence[Individual] = (),
        *,
        n_generations: int = 0,
        n_evaluations: int = 0,
    ) -> "OptimizationResult":
        """Build a result object from optimizer individuals."""
        return OptimizationResult(
            points=tuple(ParetoPoint.from_individual(individual) for individual in front),
            optimal_set_points=tuple(
                ParetoPoint.from_individual(individual) for individual in optimal_set
            ),
            n_generations=n_generations,
            n_evaluations=n_evaluations,
        )
