"""Frozen list-based OptRR generation loop (the pre-array-engine reference).

This module preserves, verbatim in behaviour, the ``Individual``-list
generation loop that :class:`~repro.core.optimizer.OptRROptimizer` used
before the structure-of-arrays population engine.  It exists for two
purposes:

* **Equivalence** — ``tests/test_engine_equivalence.py`` asserts that the
  array-native loop reproduces this loop's trajectory bit-for-bit when the
  single intentional semantic change is switched on here too
  (``reuse_archive_fitness=True``: mating selection reuses the union fitness
  environmental selection just assigned, instead of re-running SPEA2 fitness
  assignment on the archive alone — the canonical SPEA2 reading, and the fix
  for the redundant per-generation re-assignment).
* **Benchmarking** — ``benchmarks/bench_generation.py`` measures the
  end-to-end speedup of the array-native loop over this reference with
  ``reuse_archive_fitness=False`` (the exact pre-PR behaviour).

Do not "optimise" this module; its value is that it stays put.
"""

from __future__ import annotations

import numpy as np

from repro.core.archive import OptimalSet
from repro.core.config import OptRRConfig
from repro.core.problem import RRMatrixProblem
from repro.core.result import OptimizationResult
from repro.data.distribution import CategoricalDistribution
from repro.emoo.density import pairwise_distances
from repro.emoo.fitness import assign_spea2_fitness
from repro.emoo.individual import Individual, objectives_array
from repro.emoo.selection import binary_tournament
from repro.emoo.termination import (
    GenerationState,
    MaxGenerations,
    StagnationTermination,
    TerminationCriterion,
)
from repro.exceptions import OptimizationError
from repro.rr.matrix import stack_matrices
from repro.types import SeedLike, as_rng


def reference_truncate_archive(
    archive: list[Individual], target_size: int
) -> list[Individual]:
    """The pre-PR SPEA2 truncation: per removal, slice the alive submatrix
    with ``np.ix_``, fully sort every row and lexsort — the O(removals × m²
    log m) loop the incremental :func:`repro.emoo.selection.truncate_indices`
    replaced.  Kept as the ground truth for the equivalence property tests."""
    survivors = list(archive)
    if len(survivors) <= target_size:
        return survivors
    distances = pairwise_distances(objectives_array(survivors))
    np.fill_diagonal(distances, np.inf)
    alive = np.arange(len(survivors))
    while alive.size > target_size:
        sub = distances[np.ix_(alive, alive)]
        sorted_rows = np.sort(sub, axis=1)
        # lexsort treats the LAST key as primary, so feed the columns
        # (nearest first) in reverse.
        order = np.lexsort(sorted_rows.T[::-1])
        alive = np.delete(alive, order[0])
    return [survivors[index] for index in alive]


def reference_environmental_selection(
    union: list[Individual],
    archive_size: int,
    *,
    density_k: int = 1,
) -> list[Individual]:
    """The pre-PR environmental selection over ``Individual`` lists (fresh
    fitness assignment, list building, reference truncation)."""
    if not union:
        raise OptimizationError("environmental selection needs a non-empty union")
    fitness = assign_spea2_fitness(union, density_k)
    non_dominated_mask = fitness < 1.0
    n_non_dominated = int(non_dominated_mask.sum())
    if n_non_dominated == archive_size:
        return [union[index] for index in np.flatnonzero(non_dominated_mask)]
    if n_non_dominated < archive_size:
        dominated_index = np.flatnonzero(~non_dominated_mask)
        best_dominated = dominated_index[
            np.argsort(fitness[dominated_index], kind="stable")
        ]
        needed = archive_size - n_non_dominated
        chosen = [union[index] for index in np.flatnonzero(non_dominated_mask)]
        chosen.extend(union[index] for index in best_dominated[:needed])
        return chosen
    non_dominated = [union[index] for index in np.flatnonzero(non_dominated_mask)]
    return reference_truncate_archive(non_dominated, archive_size)


def _termination(config: OptRRConfig) -> TerminationCriterion:
    criterion: TerminationCriterion = MaxGenerations(config.n_generations)
    if config.stagnation_patience is not None:
        criterion = criterion | StagnationTermination(config.stagnation_patience)
    return criterion


def _baseline_seed_individuals(
    problem: RRMatrixProblem, config: OptRRConfig, rng: np.random.Generator
) -> list[Individual]:
    if config.baseline_seeds <= 0:
        return []
    from repro.rr.schemes import warner_matrix

    n = problem.n_categories
    retention_values = np.linspace(0.0, 1.0, config.baseline_seeds)
    matrices = [warner_matrix(n, float(retention)) for retention in retention_values]
    matrices = problem.repair_genomes(matrices, rng)
    return problem.evaluate_genomes(matrices)


def _make_offspring(
    problem: RRMatrixProblem,
    config: OptRRConfig,
    archive: list[Individual],
    rng: np.random.Generator,
    *,
    reuse_archive_fitness: bool,
) -> np.ndarray:
    """Mating selection, crossover, mutation and bound repair over lists."""
    if not reuse_archive_fitness:
        # Pre-PR behaviour: re-assign SPEA2 fitness to the archive alone
        # (redundant — environmental selection assigned union fitness moments
        # earlier — and subtly non-canonical, since strength/density change
        # when computed over the archive instead of the union).
        assign_spea2_fitness(archive, config.density_k)
    parents = binary_tournament(archive, config.population_size, seed=rng)
    parent_stack = stack_matrices([parent.genome for parent in parents])
    n_parents = parent_stack.shape[0]
    first_index = np.arange(0, n_parents, 2)
    first = parent_stack[first_index]
    second = parent_stack[(first_index + 1) % n_parents]
    crossed = rng.random(size=first.shape[0]) < config.crossover_rate
    child_a = first.copy()
    child_b = second.copy()
    if crossed.any():
        cross_a, cross_b = problem.crossover_stack(first[crossed], second[crossed], rng)
        child_a[crossed] = cross_a
        child_b[crossed] = cross_b
    children = np.empty((2 * first.shape[0], *parent_stack.shape[1:]))
    children[0::2] = child_a
    children[1::2] = child_b
    children = children[: config.population_size]
    mutated = rng.random(size=children.shape[0]) < config.mutation_rate
    if mutated.any():
        children[mutated] = problem.mutate_stack(children[mutated], rng)
    return problem.repair_stack(children)


def _refresh_from_optimal_set(
    individuals: list[Individual],
    optimal_set: OptimalSet,
    *,
    reuse_archive_fitness: bool,
) -> None:
    for index, individual in enumerate(individuals):
        if not individual.feasible or "privacy" not in individual.metadata:
            continue
        slot = optimal_set.slot_of(float(individual.metadata["privacy"]))
        occupant = optimal_set.best_for_slot(slot)
        if occupant is None:
            continue
        if float(occupant.metadata["utility"]) < float(individual.metadata["utility"]):
            replacement = occupant.copy()
            if reuse_archive_fitness:
                # The array engine keeps the replaced row's selection fitness
                # so the archive stamp stays truthful; mirror that here.
                replacement.fitness = individual.fitness
            individuals[index] = replacement


def reference_optrr_run(
    prior: CategoricalDistribution,
    n_records: int,
    config: OptRRConfig,
    *,
    seed: SeedLike = None,
    reuse_archive_fitness: bool = False,
) -> OptimizationResult:
    """Run the frozen list-based OptRR loop and return its result.

    With ``reuse_archive_fitness=False`` this is the exact pre-PR loop; with
    ``True`` it applies the same fitness-reuse fix as the array engine (and is
    then bit-for-bit equivalent to :meth:`OptRROptimizer.run`, RNG stream
    included).
    """
    if not isinstance(prior, CategoricalDistribution):
        prior = CategoricalDistribution(np.asarray(prior, dtype=np.float64))
    problem = RRMatrixProblem(
        prior=prior,
        n_records=n_records,
        delta=config.delta,
        mutation_scale=config.mutation_scale,
        diagonal_bias=config.diagonal_bias,
    )
    rng = as_rng(seed if seed is not None else config.seed)
    termination = _termination(config)
    termination.reset()

    population = problem.initial_population(config.population_size, rng)
    baseline_seeds = _baseline_seed_individuals(problem, config, rng)
    if not population:
        raise OptimizationError("initial population is empty")
    archive: list[Individual] = []
    optimal_set = OptimalSet(config.optimal_set_size)
    optimal_set.offer_many(population)
    optimal_set.offer_many(baseline_seeds)
    if baseline_seeds:
        stride = max(1, len(baseline_seeds) // 25)
        population.extend(baseline_seeds[::stride])

    generation = 0
    while True:
        union = population + archive
        archive = reference_environmental_selection(
            union, config.archive_size, density_k=config.density_k
        )
        offspring_stack = _make_offspring(
            problem, config, archive, rng, reuse_archive_fitness=reuse_archive_fitness
        )
        population = problem.evaluate_stack(offspring_stack)
        updates = optimal_set.offer_many(population)
        updates += optimal_set.offer_many(archive)
        _refresh_from_optimal_set(
            population, optimal_set, reuse_archive_fitness=reuse_archive_fitness
        )
        _refresh_from_optimal_set(
            archive, optimal_set, reuse_archive_fitness=reuse_archive_fitness
        )
        state = GenerationState(generation=generation, archive_updates=updates)
        if termination.should_stop(state):
            break
        generation += 1

    front = optimal_set.pareto_members()
    if not front:
        front = archive
    return OptimizationResult.from_individuals(
        front,
        optimal_set.members(),
        n_generations=generation + 1,
        n_evaluations=problem.n_evaluations,
    )
