"""Brute-force / grid-search baseline for tiny domains.

The paper's Fact 1 shows exhaustive search is hopeless for realistic domain
sizes, but for ``n = 2`` or ``n = 3`` with a coarse grid it is perfectly
feasible — and extremely useful for validating the evolutionary optimizer:
the OptRR front should be close to the exhaustive front on such instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator

import numpy as np

from repro.core.result import OptimizationResult, ParetoPoint
from repro.core.search_space import brute_force_is_feasible, rr_matrix_combinations
from repro.data.distribution import CategoricalDistribution
from repro.emoo.dominance import non_dominated
from repro.emoo.individual import Individual
from repro.exceptions import OptimizationError
from repro.metrics.evaluation import MatrixEvaluator
from repro.rr.matrix import RRMatrix
from repro.utils.validation import check_positive_int


def _grid_columns(n_categories: int, d: int) -> list[np.ndarray]:
    """All probability columns whose entries are multiples of ``1/d``."""
    columns: list[np.ndarray] = []
    for combo in _compositions(d, n_categories):
        columns.append(np.asarray(combo, dtype=np.float64) / d)
    return columns


def _compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All ways of writing ``total`` as an ordered sum of ``parts``
    non-negative integers."""
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for rest in _compositions(total - head, parts - 1):
            yield (head,) + rest


@dataclass(frozen=True)
class BruteForceReport:
    """Outcome of a brute-force sweep.

    Attributes
    ----------
    result:
        The Pareto front found by exhaustive enumeration, packaged like an
        optimizer result.
    n_enumerated:
        Number of matrices enumerated.
    n_feasible:
        Number of matrices that satisfied the bound and were invertible.
    """

    result: OptimizationResult
    n_enumerated: int
    n_feasible: int


def brute_force_front(
    prior: CategoricalDistribution | np.ndarray,
    n_records: int,
    *,
    d: int = 10,
    delta: float | None = None,
    budget: int = 2_000_000,
) -> BruteForceReport:
    """Exhaustively enumerate discretised RR matrices and return the exact
    Pareto front.

    Parameters
    ----------
    prior:
        Original data distribution.
    n_records:
        Record count for the closed-form utility.
    d:
        Grid resolution: entries are multiples of ``1/d``.
    delta:
        Optional worst-case privacy bound.
    budget:
        Safety limit on the number of matrices enumerated; exceeding it raises
        :class:`OptimizationError` (use the evolutionary optimizer instead).
    """
    if not isinstance(prior, CategoricalDistribution):
        prior = CategoricalDistribution(np.asarray(prior, dtype=np.float64))
    check_positive_int(d, "d")
    n = prior.n_categories
    if not brute_force_is_feasible(n, d, budget=budget):
        raise OptimizationError(
            f"brute force over n={n}, d={d} needs "
            f"{rr_matrix_combinations(n, d):.3e} evaluations, which exceeds the "
            f"budget of {budget}"
        )
    evaluator = MatrixEvaluator(prior, n_records, delta)
    columns = _grid_columns(n, d)
    individuals: list[Individual] = []
    n_enumerated = 0
    n_feasible = 0
    for selection in product(range(len(columns)), repeat=n):
        n_enumerated += 1
        matrix_array = np.column_stack([columns[index] for index in selection])
        matrix = RRMatrix(matrix_array)
        evaluation = evaluator.evaluate(matrix)
        if not evaluation.feasible:
            continue
        n_feasible += 1
        individuals.append(
            Individual(
                genome=matrix,
                objectives=np.array([-evaluation.privacy, evaluation.utility]),
                feasible=True,
                metadata={
                    "privacy": evaluation.privacy,
                    "utility": evaluation.utility,
                    "max_posterior": evaluation.max_posterior,
                },
            )
        )
    front = non_dominated(individuals)
    result = OptimizationResult(
        points=tuple(ParetoPoint.from_individual(individual) for individual in front),
        n_generations=0,
        n_evaluations=n_enumerated,
    )
    return BruteForceReport(result=result, n_enumerated=n_enumerated, n_feasible=n_feasible)
