"""The optimal set Ω (Section V-H of the paper).

SPEA2's archive and population are bounded, so good RR matrices are discarded
when the front gets crowded.  The paper's fix is an additional *optimal set*
Ω: a large array of slots indexed by (discretised) privacy value, each slot
keeping the matrix with the best utility seen so far at that privacy level.
Updating Ω is O(1) per candidate, so its size can be much larger than the
archive without affecting the cubic environmental-selection cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

from repro.emoo.dominance import non_dominated
from repro.emoo.individual import Individual
from repro.emoo.population import Population, _metadata_scalar
from repro.exceptions import OptimizationError
from repro.utils.arrays import decode_array, encode_array
from repro.utils.validation import check_positive_int


def _columnar_metadata(members: list[Individual]) -> dict[str, Any]:
    """Member metadata as columns: numeric/bool columns travel as byte
    arrays, anything else (or ragged keys) falls back to JSON values."""
    keys = list(members[0].metadata)
    if any(list(member.metadata) != keys for member in members):
        return {
            "__rows__": [
                {
                    key: (value.item() if isinstance(value, np.generic) else value)
                    for key, value in member.metadata.items()
                }
                for member in members
            ]
        }
    columns: dict[str, Any] = {}
    for key in keys:
        values = [member.metadata[key] for member in members]
        array = np.asarray(values)
        if array.dtype.kind in "fbiu":
            columns[key] = {"column": encode_array(array)}
        else:
            columns[key] = {
                "values": [
                    value.item() if isinstance(value, np.generic) else value
                    for value in values
                ]
            }
    return columns


def _metadata_rows(document: dict[str, Any], count: int) -> list[dict[str, Any]]:
    """Rebuild per-member metadata dicts from :func:`_columnar_metadata`."""
    if "__rows__" in document:
        return [dict(row) for row in document["__rows__"]]
    columns: dict[str, list[Any]] = {}
    for key, entry in document.items():
        if "column" in entry:
            columns[key] = [_metadata_scalar(value) for value in decode_array(entry["column"])]
        else:
            columns[key] = list(entry["values"])
    return [{key: columns[key][row] for key in columns} for row in range(count)]


@dataclass
class OptimalSet:
    """Privacy-indexed store of the best matrices found so far.

    Parameters
    ----------
    size:
        Number of privacy slots (``N_Ω``).  The privacy range ``[0, 1]`` is
        divided uniformly; a matrix with privacy ``p`` lands in slot
        ``floor(p * size)``.
    """

    size: int = 1000

    def __post_init__(self) -> None:
        check_positive_int(self.size, "size")
        self._slots: list[Individual | None] = [None] * self.size
        # Parallel utility array (+inf = empty slot) so whole populations can
        # be pre-filtered against Ω with one vectorized comparison.
        self._utilities = np.full(self.size, np.inf)
        self._n_updates = 0
        # (n_updates, document) pair reused by state_document while Ω is quiet.
        self._state_cache: tuple[int, dict[str, Any]] | None = None

    # -- indexing ------------------------------------------------------------
    def slot_of(self, privacy: float) -> int:
        """Slot index of a privacy value."""
        if not np.isfinite(privacy):
            raise OptimizationError(f"privacy must be finite, got {privacy}")
        index = int(np.floor(np.clip(privacy, 0.0, 1.0) * self.size))
        return min(index, self.size - 1)

    def slots_of(self, privacy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`slot_of` over a privacy array."""
        privacy = np.asarray(privacy, dtype=np.float64)
        if privacy.size and not np.all(np.isfinite(privacy)):
            raise OptimizationError("privacy values must be finite")
        indices = np.floor(np.clip(privacy, 0.0, 1.0) * self.size).astype(np.intp)
        return np.minimum(indices, self.size - 1)

    # -- updates ---------------------------------------------------------------
    def offer(self, individual: Individual) -> bool:
        """Offer a candidate to Ω.

        The candidate must carry ``privacy`` and ``utility`` metadata (set by
        :class:`repro.core.problem.RRMatrixProblem`).  It replaces the current
        occupant of its privacy slot when the slot is empty or the candidate
        has strictly better (lower) utility.  Infeasible candidates are
        ignored.  Returns True when Ω was updated.
        """
        if not individual.feasible:
            return False
        try:
            privacy = float(individual.metadata["privacy"])
            utility = float(individual.metadata["utility"])
        except KeyError as exc:
            raise OptimizationError(
                "individuals offered to the optimal set must carry 'privacy' "
                "and 'utility' metadata"
            ) from exc
        if not np.isfinite(utility):
            return False
        slot = self.slot_of(privacy)
        occupant = self._slots[slot]
        if occupant is None or utility < float(occupant.metadata["utility"]):
            self._slots[slot] = individual.copy()
            self._utilities[slot] = utility
            self._n_updates += 1
            return True
        return False

    def offer_many(self, individuals: list[Individual]) -> int:
        """Offer a batch of candidates; returns the number of accepted updates."""
        return sum(1 for individual in individuals if self.offer(individual))

    def offer_population(
        self,
        population: Population,
        make_individual: Callable[[int], Individual],
    ) -> int:
        """Offer a whole structure-of-arrays population to Ω.

        Candidates are pre-filtered with one vectorized comparison against the
        slot-utility array; only the (few) actual improvements construct an
        ``Individual`` via ``make_individual(row_index)``.  Accept/reject
        decisions and the update count are identical to offering the rows
        sequentially through :meth:`offer`, because slot utilities only ever
        decrease — a candidate losing the vectorized pre-filter would also
        lose the sequential comparison.
        """
        utility = np.asarray(population.metadata["utility"], dtype=np.float64)
        candidates = np.flatnonzero(population.feasible & np.isfinite(utility))
        if candidates.size == 0:
            return 0
        slots = self.slots_of(population.metadata["privacy"][candidates])
        improving = np.flatnonzero(utility[candidates] < self._utilities[slots])
        updates = 0
        for local in improving:
            row = int(candidates[local])
            slot = int(slots[local])
            # Re-check: an earlier row of this batch may have taken the slot
            # with a better utility than the pre-filter snapshot knew about.
            if utility[row] < self._utilities[slot]:
                self._slots[slot] = make_individual(row)
                self._utilities[slot] = utility[row]
                self._n_updates += 1
                updates += 1
        return updates

    # -- checkpointing ---------------------------------------------------------
    def state_document(self) -> dict[str, Any]:
        """Serialize Ω bit-exactly for a ``checkpoint`` document.

        Occupied slots are stacked into columnar arrays (one base64 byte
        array for all genomes, one per objective/metadata column) so
        serializing a full 1000-slot Ω stays off the per-generation hot
        path; metadata columns with a numeric/bool dtype travel as byte
        arrays, anything else falls back to a JSON value list.  The document
        is cached keyed by :attr:`n_updates` — Ω only changes through
        accepted offers, so checkpoints taken while Ω is quiet reuse the
        previous serialization for free.  Genomes must expose
        ``probabilities`` — Ω is the paper's RR-specific structure and only
        ever stores RR matrices.
        """
        cached = getattr(self, "_state_cache", None)
        if cached is not None and cached[0] == self._n_updates:
            return cached[1]
        occupied = [
            (slot, member) for slot, member in enumerate(self._slots) if member is not None
        ]
        document: dict[str, Any] = {
            "size": self.size,
            "n_updates": self._n_updates,
            "slots": [slot for slot, _ in occupied],
        }
        if occupied:
            members = [member for _, member in occupied]
            first = np.asarray(members[0].genome.probabilities)
            genomes = np.empty((len(members), *first.shape))
            for row, member in enumerate(members):
                genomes[row] = member.genome.probabilities
            document["genomes"] = encode_array(genomes)
            document["objectives"] = encode_array(
                np.stack([member.objectives for member in members])
            )
            document["feasible"] = encode_array(
                np.array([member.feasible for member in members], dtype=bool)
            )
            document["metadata"] = _columnar_metadata(members)
        self._state_cache = (self._n_updates, document)
        return document

    def restore_state(
        self, document: dict[str, Any], genome_builder: Callable[[np.ndarray], Any]
    ) -> None:
        """Restore the state captured by :meth:`state_document`.

        ``genome_builder`` rebuilds a genome object from one stacked genome
        row (the RR path passes :meth:`repro.rr.matrix.RRMatrix.
        from_validated`).  The per-slot utility array is rebuilt from the
        restored members, so the vectorized Ω pre-filter behaves identically
        after a resume.
        """
        if int(document["size"]) != self.size:
            raise OptimizationError(
                f"checkpointed optimal set has {document['size']} slots, this one {self.size}"
            )
        self._slots = [None] * self.size
        self._utilities = np.full(self.size, np.inf)
        self._n_updates = int(document.get("n_updates", 0))
        self._state_cache = None
        slots = document.get("slots", [])
        if not slots:
            return
        genomes = decode_array(document["genomes"])
        objectives = decode_array(document["objectives"])
        feasible = decode_array(document["feasible"])
        metadata = _metadata_rows(document.get("metadata", {}), len(slots))
        for row, slot in enumerate(slots):
            slot = int(slot)
            member = Individual(
                genome=genome_builder(genomes[row]),
                objectives=objectives[row].copy(),
                feasible=bool(feasible[row]),
                metadata=metadata[row],
            )
            self._slots[slot] = member
            self._utilities[slot] = float(member.metadata["utility"])

    def slot_utilities(self) -> np.ndarray:
        """Read-only view of the per-slot utilities (+inf = empty slot)."""
        view = self._utilities.view()
        view.flags.writeable = False
        return view

    def best_for_slot(self, slot: int) -> Individual | None:
        """Current occupant of ``slot`` (None when empty)."""
        if not 0 <= slot < self.size:
            raise OptimizationError(f"slot {slot} out of range [0, {self.size})")
        return self._slots[slot]

    # -- views ------------------------------------------------------------------
    @property
    def n_updates(self) -> int:
        """Total number of accepted updates since creation."""
        return self._n_updates

    @property
    def n_occupied(self) -> int:
        """Number of non-empty slots."""
        return sum(1 for slot in self._slots if slot is not None)

    def members(self) -> list[Individual]:
        """All stored individuals, ordered by privacy slot."""
        return [slot for slot in self._slots if slot is not None]

    def pareto_members(self) -> list[Individual]:
        """The non-dominated subset of the stored individuals."""
        return non_dominated(self.members())

    def __len__(self) -> int:
        return self.n_occupied

    def __iter__(self) -> Iterator[Individual]:
        return iter(self.members())

    def best_utility_for_privacy(self, min_privacy: float) -> Individual | None:
        """Best-utility member whose privacy is at least ``min_privacy``.

        This is the user-facing query the paper motivates Ω with: "give me the
        most useful matrix that achieves at least this much privacy".
        """
        candidates = [
            member
            for member in self.members()
            if float(member.metadata["privacy"]) >= min_privacy
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda member: float(member.metadata["utility"]))

    def best_privacy_for_utility(self, max_utility: float) -> Individual | None:
        """Best-privacy member whose utility (MSE) is at most ``max_utility``."""
        candidates = [
            member
            for member in self.members()
            if float(member.metadata["utility"]) <= max_utility
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda member: float(member.metadata["privacy"]))
