"""The optimal set Ω (Section V-H of the paper).

SPEA2's archive and population are bounded, so good RR matrices are discarded
when the front gets crowded.  The paper's fix is an additional *optimal set*
Ω: a large array of slots indexed by (discretised) privacy value, each slot
keeping the matrix with the best utility seen so far at that privacy level.
Updating Ω is O(1) per candidate, so its size can be much larger than the
archive without affecting the cubic environmental-selection cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.emoo.dominance import non_dominated
from repro.emoo.individual import Individual
from repro.emoo.population import Population
from repro.exceptions import OptimizationError
from repro.utils.validation import check_positive_int


@dataclass
class OptimalSet:
    """Privacy-indexed store of the best matrices found so far.

    Parameters
    ----------
    size:
        Number of privacy slots (``N_Ω``).  The privacy range ``[0, 1]`` is
        divided uniformly; a matrix with privacy ``p`` lands in slot
        ``floor(p * size)``.
    """

    size: int = 1000

    def __post_init__(self) -> None:
        check_positive_int(self.size, "size")
        self._slots: list[Individual | None] = [None] * self.size
        # Parallel utility array (+inf = empty slot) so whole populations can
        # be pre-filtered against Ω with one vectorized comparison.
        self._utilities = np.full(self.size, np.inf)
        self._n_updates = 0

    # -- indexing ------------------------------------------------------------
    def slot_of(self, privacy: float) -> int:
        """Slot index of a privacy value."""
        if not np.isfinite(privacy):
            raise OptimizationError(f"privacy must be finite, got {privacy}")
        index = int(np.floor(np.clip(privacy, 0.0, 1.0) * self.size))
        return min(index, self.size - 1)

    def slots_of(self, privacy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`slot_of` over a privacy array."""
        privacy = np.asarray(privacy, dtype=np.float64)
        if privacy.size and not np.all(np.isfinite(privacy)):
            raise OptimizationError("privacy values must be finite")
        indices = np.floor(np.clip(privacy, 0.0, 1.0) * self.size).astype(np.intp)
        return np.minimum(indices, self.size - 1)

    # -- updates ---------------------------------------------------------------
    def offer(self, individual: Individual) -> bool:
        """Offer a candidate to Ω.

        The candidate must carry ``privacy`` and ``utility`` metadata (set by
        :class:`repro.core.problem.RRMatrixProblem`).  It replaces the current
        occupant of its privacy slot when the slot is empty or the candidate
        has strictly better (lower) utility.  Infeasible candidates are
        ignored.  Returns True when Ω was updated.
        """
        if not individual.feasible:
            return False
        try:
            privacy = float(individual.metadata["privacy"])
            utility = float(individual.metadata["utility"])
        except KeyError as exc:
            raise OptimizationError(
                "individuals offered to the optimal set must carry 'privacy' "
                "and 'utility' metadata"
            ) from exc
        if not np.isfinite(utility):
            return False
        slot = self.slot_of(privacy)
        occupant = self._slots[slot]
        if occupant is None or utility < float(occupant.metadata["utility"]):
            self._slots[slot] = individual.copy()
            self._utilities[slot] = utility
            self._n_updates += 1
            return True
        return False

    def offer_many(self, individuals: list[Individual]) -> int:
        """Offer a batch of candidates; returns the number of accepted updates."""
        return sum(1 for individual in individuals if self.offer(individual))

    def offer_population(
        self,
        population: Population,
        make_individual: Callable[[int], Individual],
    ) -> int:
        """Offer a whole structure-of-arrays population to Ω.

        Candidates are pre-filtered with one vectorized comparison against the
        slot-utility array; only the (few) actual improvements construct an
        ``Individual`` via ``make_individual(row_index)``.  Accept/reject
        decisions and the update count are identical to offering the rows
        sequentially through :meth:`offer`, because slot utilities only ever
        decrease — a candidate losing the vectorized pre-filter would also
        lose the sequential comparison.
        """
        utility = np.asarray(population.metadata["utility"], dtype=np.float64)
        candidates = np.flatnonzero(population.feasible & np.isfinite(utility))
        if candidates.size == 0:
            return 0
        slots = self.slots_of(population.metadata["privacy"][candidates])
        improving = np.flatnonzero(utility[candidates] < self._utilities[slots])
        updates = 0
        for local in improving:
            row = int(candidates[local])
            slot = int(slots[local])
            # Re-check: an earlier row of this batch may have taken the slot
            # with a better utility than the pre-filter snapshot knew about.
            if utility[row] < self._utilities[slot]:
                self._slots[slot] = make_individual(row)
                self._utilities[slot] = utility[row]
                self._n_updates += 1
                updates += 1
        return updates

    def slot_utilities(self) -> np.ndarray:
        """Read-only view of the per-slot utilities (+inf = empty slot)."""
        view = self._utilities.view()
        view.flags.writeable = False
        return view

    def best_for_slot(self, slot: int) -> Individual | None:
        """Current occupant of ``slot`` (None when empty)."""
        if not 0 <= slot < self.size:
            raise OptimizationError(f"slot {slot} out of range [0, {self.size})")
        return self._slots[slot]

    # -- views ------------------------------------------------------------------
    @property
    def n_updates(self) -> int:
        """Total number of accepted updates since creation."""
        return self._n_updates

    @property
    def n_occupied(self) -> int:
        """Number of non-empty slots."""
        return sum(1 for slot in self._slots if slot is not None)

    def members(self) -> list[Individual]:
        """All stored individuals, ordered by privacy slot."""
        return [slot for slot in self._slots if slot is not None]

    def pareto_members(self) -> list[Individual]:
        """The non-dominated subset of the stored individuals."""
        return non_dominated(self.members())

    def __len__(self) -> int:
        return self.n_occupied

    def __iter__(self) -> Iterator[Individual]:
        return iter(self.members())

    def best_utility_for_privacy(self, min_privacy: float) -> Individual | None:
        """Best-utility member whose privacy is at least ``min_privacy``.

        This is the user-facing query the paper motivates Ω with: "give me the
        most useful matrix that achieves at least this much privacy".
        """
        candidates = [
            member
            for member in self.members()
            if float(member.metadata["privacy"]) >= min_privacy
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda member: float(member.metadata["utility"]))

    def best_privacy_for_utility(self, max_utility: float) -> Individual | None:
        """Best-privacy member whose utility (MSE) is at most ``max_utility``."""
        candidates = [
            member
            for member in self.members()
            if float(member.metadata["utility"]) <= max_utility
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda member: float(member.metadata["privacy"]))
