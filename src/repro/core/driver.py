"""Step-based optimization driving with checkpoint/resume (public surface).

The implementation lives in :mod:`repro.emoo.driver`: the generic SPEA2 and
NSGA-II engines are refactored onto the same stepwise driver as the OptRR
optimizer, and the ``emoo`` layer must not depend on ``repro.core``.  This
module is the import surface the RR-matrix layer, the experiment harness and
user code are documented against::

    from repro.core.driver import OptimizationDriver, checkpoint_scope

See :mod:`repro.emoo.driver` for the full design notes (step protocol,
checkpoint document layout, the bit-for-bit resume invariant, and the
ambient checkpoint scope used by cached grids).
"""

from repro.emoo.driver import (
    CHECKPOINT_VERSION,
    build_driver,
    DEFAULT_CHECKPOINT_EVERY,
    CheckpointScope,
    GenerationSnapshot,
    OptimizationDriver,
    StepOutcome,
    SteppableOptimization,
    active_checkpoint_scope,
    checkpoint_scope,
    claim_scoped_checkpoint,
    population_from_document,
    population_to_document,
    workload_fingerprint,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "build_driver",
    "DEFAULT_CHECKPOINT_EVERY",
    "CheckpointScope",
    "GenerationSnapshot",
    "OptimizationDriver",
    "StepOutcome",
    "SteppableOptimization",
    "active_checkpoint_scope",
    "checkpoint_scope",
    "claim_scoped_checkpoint",
    "population_from_document",
    "population_to_document",
    "workload_fingerprint",
]
