"""The RR-matrix optimization problem plugged into the EMOO engine.

Genomes are :class:`~repro.rr.matrix.RRMatrix` objects; the two minimised
objectives are ``(-privacy, utility)``; the variation operators are the
paper's column crossover and proportional column mutation; and the repair
step enforces the worst-case privacy bound ``delta`` when one is configured.

Evaluation and repair run through the batch engine: whole populations are
stacked into ``(B, n, n)`` arrays and evaluated with
:meth:`~repro.metrics.evaluation.MatrixEvaluator.evaluate_batch` /
:func:`~repro.core.operators.enforce_privacy_bound_batch`.  The scalar
``evaluate``/``repair`` methods remain as thin wrappers over the same engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.operators import (
    column_crossover,
    column_crossover_batch,
    enforce_privacy_bound,
    enforce_privacy_bound_batch,
    proportional_column_mutation,
    proportional_column_mutation_batch,
    random_initial_matrix,
)
from repro.data.distribution import CategoricalDistribution
from repro.emoo.individual import Individual
from repro.emoo.population import Population
from repro.emoo.problem import Problem
from repro.metrics.evaluation import MatrixEvaluator
from repro.rr.matrix import RRMatrix, stack_matrices, unstack_matrices
from repro.utils.validation import check_in_unit_interval, check_positive_int

#: Finite utility penalty substituted for the infinite MSE of non-invertible
#: matrices so objective arrays stay finite for the front-quality indicators.
SINGULAR_UTILITY_PENALTY = 1e6


@dataclass
class RRMatrixProblem(Problem):
    """Multi-objective problem: find RR matrices trading privacy vs utility.

    Parameters
    ----------
    prior:
        The original data distribution ``P(X)``.
    n_records:
        Number of records ``N`` used by the closed-form utility (Theorem 6).
    delta:
        Optional worst-case privacy bound (Eq. 9).
    mutation_scale:
        Magnitude bound of the mutation operator.
    diagonal_bias:
        Diagonal bias used for half of the random genomes (see
        :func:`repro.core.operators.random_initial_matrices`).
    """

    prior: CategoricalDistribution
    n_records: int
    delta: float | None = None
    mutation_scale: float = 0.3
    diagonal_bias: float = 2.0
    n_objectives: int = field(default=2, init=False)

    def __post_init__(self) -> None:
        if not isinstance(self.prior, CategoricalDistribution):
            self.prior = CategoricalDistribution(np.asarray(self.prior, dtype=np.float64))
        check_positive_int(self.n_records, "n_records")
        if self.delta is not None:
            check_in_unit_interval(self.delta, "delta", inclusive_low=False)
        check_in_unit_interval(self.mutation_scale, "mutation_scale", inclusive_low=False)
        self._evaluator = MatrixEvaluator(self.prior, self.n_records, self.delta)
        self._n_evaluations = 0
        self._n_low_evaluations = 0
        self._counter = 0

    # -- bookkeeping -----------------------------------------------------------
    @property
    def n_categories(self) -> int:
        """Domain size of the optimised matrices."""
        return self.prior.n_categories

    @property
    def n_evaluations(self) -> int:
        """Number of matrix evaluations performed so far."""
        return self._n_evaluations

    @property
    def n_low_evaluations(self) -> int:
        """How many of those evaluations ran at reduced fidelity (< 1)."""
        return self._n_low_evaluations

    @property
    def n_full_evaluations(self) -> int:
        """How many evaluations ran at full fidelity (every evaluation is
        either low- or full-fidelity, so this is the complement)."""
        return self._n_evaluations - self._n_low_evaluations

    @property
    def evaluator(self) -> MatrixEvaluator:
        """The underlying privacy/utility evaluator."""
        return self._evaluator

    def counters_document(self) -> dict[str, int]:
        """The problem's bookkeeping counters for a ``checkpoint`` document.

        ``counter`` drives the random-genome kind cycling, so restoring it
        keeps any post-resume genome creation on the same cycle; the
        evaluation counts make resumed results report the true cumulative
        cost (split into full- and low-fidelity work)."""
        return {
            "n_evaluations": self._n_evaluations,
            "n_low_evaluations": self._n_low_evaluations,
            "counter": self._counter,
        }

    def restore_counters(self, document: dict[str, int]) -> None:
        """Restore the counters captured by :meth:`counters_document`."""
        self._n_evaluations = int(document.get("n_evaluations", 0))
        self._n_low_evaluations = int(document.get("n_low_evaluations", 0))
        self._counter = int(document.get("counter", 0))

    # -- Problem interface -------------------------------------------------------
    def fingerprint_document(self) -> dict:
        """Checkpoint workload identity: the prior, record count, bound and
        operator parameters — everything that changes what an evaluation
        means."""
        from repro.utils.arrays import encode_array

        return {
            "problem": type(self).__name__,
            "prior": encode_array(self.prior.probabilities),
            "n_records": self.n_records,
            "delta": self.delta,
            "mutation_scale": self.mutation_scale,
            "diagonal_bias": self.diagonal_bias,
        }

    def genome_to_data(self, genome) -> dict:
        """Checkpoint codec: RR matrices serialize as base64 byte arrays."""
        if isinstance(genome, RRMatrix):
            from repro.utils.arrays import encode_array

            return {"kind": "rr_matrix", "array": encode_array(genome.probabilities)}
        return super().genome_to_data(genome)

    def genome_from_data(self, data) -> RRMatrix:
        """Rebuild an :class:`RRMatrix` genome from :meth:`genome_to_data`
        output (through the trusted ``from_validated`` path: the bytes came
        from a matrix this engine already validated)."""
        if isinstance(data, dict) and data.get("kind") == "rr_matrix":
            from repro.utils.arrays import decode_array

            return RRMatrix.from_validated(decode_array(data["array"]))
        return super().genome_from_data(data)

    def random_genome(self, rng: np.random.Generator) -> RRMatrix:
        """Create a random RR matrix, cycling through plain random,
        diagonally-biased and near-uniform draws so the initial front spans
        the whole privacy/utility trade-off."""
        self._counter += 1
        matrix = random_initial_matrix(
            self.n_categories, rng, kind=self._counter, diagonal_bias=self.diagonal_bias
        )
        return self.repair(matrix, rng)

    def initial_population(self, size: int, rng: np.random.Generator) -> list[Individual]:
        """Create, batch-repair and batch-evaluate ``size`` random genomes.

        The random draws happen sequentially (same stream as generating one
        genome at a time); repair and evaluation go through the batch engine.
        """
        check_positive_int(size, "size")
        raw = []
        for _ in range(size):
            self._counter += 1
            raw.append(
                random_initial_matrix(
                    self.n_categories,
                    rng,
                    kind=self._counter,
                    diagonal_bias=self.diagonal_bias,
                )
            )
        return self.evaluate_genomes(self.repair_genomes(raw, rng))

    def evaluate(self, genome: RRMatrix) -> Individual:
        """Evaluate a matrix into an individual with objectives
        ``(-privacy, utility)`` (thin wrapper over the batch engine)."""
        return self.evaluate_genomes([genome])[0]

    def evaluate_genomes(
        self,
        genomes: Sequence[RRMatrix],
        *,
        fidelity: float | np.ndarray | None = None,
    ) -> list[Individual]:
        """Batch-evaluate a list of matrices into individuals."""
        if not genomes:
            return []
        return self.evaluate_stack(
            stack_matrices(list(genomes)), genomes=list(genomes), fidelity=fidelity
        )

    def evaluate_population(
        self,
        stack: np.ndarray,
        *,
        fidelity: float | np.ndarray | None = None,
    ) -> Population:
        """Evaluate a ``(B, n, n)`` stack into a structure-of-arrays population.

        This is the optimizer hot path: one call computes privacy, utility,
        worst posterior and feasibility for the whole stack with batched
        linear algebra, and the stack itself becomes the population's genome
        array — no per-matrix ``RRMatrix`` construction or re-validation
        happens inside the generation loop.  ``Individual`` views (with
        validated :class:`RRMatrix` genomes) are materialised only at the
        result boundary via :meth:`population_individual`.

        ``fidelity`` (a scalar or per-row column in ``(0, 1]``) evaluates the
        stack at reduced fidelity (see :meth:`MatrixEvaluator.evaluate_batch`)
        and adds a ``fidelity`` metadata column; ``None`` keeps the exact
        full-fidelity path and metadata layout unchanged.
        """
        evaluation = self._evaluator.evaluate_batch(stack, fidelity=fidelity)
        self._n_evaluations += len(evaluation)
        metadata = {
            "privacy": np.asarray(evaluation.privacy, dtype=np.float64),
            "utility": np.asarray(evaluation.utility, dtype=np.float64),
            "max_posterior": np.asarray(evaluation.max_posterior, dtype=np.float64),
            "invertible": np.asarray(evaluation.invertible, dtype=bool),
        }
        if evaluation.fidelity is not None:
            self._n_low_evaluations += int(np.count_nonzero(evaluation.fidelity < 1.0))
            metadata["fidelity"] = np.asarray(evaluation.fidelity, dtype=np.float64)
        finite_utility = np.where(
            np.isfinite(evaluation.utility), evaluation.utility, SINGULAR_UTILITY_PENALTY
        )
        objectives = np.stack([-evaluation.privacy, finite_utility], axis=1)
        return Population(
            genomes=np.asarray(stack, dtype=np.float64),
            objectives=objectives,
            feasible=np.asarray(evaluation.feasible, dtype=bool),
            metadata=metadata,
        )

    def population_individual(self, population: Population, index: int) -> Individual:
        """``Individual`` view of one population row (the array-to-object
        boundary).  The genome row was produced by the engine's own operators,
        so it wraps through the trusted :meth:`RRMatrix.from_validated` path
        instead of re-validating per matrix."""
        return population.individual(index, genome_builder=RRMatrix.from_validated)

    def population_to_individuals(self, population: Population) -> list[Individual]:
        """Materialise a whole population as ``Individual`` views."""
        return population.to_individuals(genome_builder=RRMatrix.from_validated)

    def initial_population_soa(
        self,
        size: int,
        rng: np.random.Generator,
        *,
        fidelity: float | np.ndarray | None = None,
    ) -> Population:
        """Create, batch-repair and batch-evaluate ``size`` random genomes
        into a structure-of-arrays population.

        Same random stream as :meth:`initial_population` (the draws happen
        sequentially); the matrices are stacked once and never unpacked.
        """
        check_positive_int(size, "size")
        raw = np.empty((size, self.n_categories, self.n_categories))
        for index in range(size):
            self._counter += 1
            raw[index] = random_initial_matrix(
                self.n_categories,
                rng,
                kind=self._counter,
                diagonal_bias=self.diagonal_bias,
            ).probabilities
        return self.evaluate_population(self.repair_stack(raw), fidelity=fidelity)

    def evaluate_stack(
        self,
        stack: np.ndarray,
        *,
        genomes: list[RRMatrix] | None = None,
        fidelity: float | np.ndarray | None = None,
    ) -> list[Individual]:
        """Evaluate a ``(B, n, n)`` stack of matrices into individuals.

        ``Individual``-list boundary over :meth:`evaluate_population`.
        ``genomes`` can supply pre-built :class:`RRMatrix` objects for the
        individuals; otherwise the stack is unstacked.
        """
        population = self.evaluate_population(stack, fidelity=fidelity)
        if genomes is None:
            genomes = unstack_matrices(stack)
        individuals = []
        for index in range(population.size):
            metadata = {
                "privacy": float(population.metadata["privacy"][index]),
                "utility": float(population.metadata["utility"][index]),
                "max_posterior": float(population.metadata["max_posterior"][index]),
                "invertible": bool(population.metadata["invertible"][index]),
            }
            if "fidelity" in population.metadata:
                metadata["fidelity"] = float(population.metadata["fidelity"][index])
            individuals.append(
                Individual(
                    genome=genomes[index],
                    objectives=population.objectives[index],
                    feasible=bool(population.feasible[index]),
                    metadata=metadata,
                )
            )
        return individuals

    def crossover(
        self, first: RRMatrix, second: RRMatrix, rng: np.random.Generator
    ) -> tuple[RRMatrix, RRMatrix]:
        """The paper's column-boundary crossover."""
        return column_crossover(first, second, rng)

    def mutate(self, genome: RRMatrix, rng: np.random.Generator) -> RRMatrix:
        """The paper's proportional column mutation."""
        return proportional_column_mutation(genome, rng, scale=self.mutation_scale)

    def repair(self, genome: RRMatrix, rng: np.random.Generator) -> RRMatrix:
        """Enforce the privacy bound when one is configured (Section V-G)."""
        if self.delta is None:
            return genome
        return enforce_privacy_bound(genome, self.prior.probabilities, self.delta)

    def repair_genomes(
        self, genomes: Sequence[RRMatrix], rng: np.random.Generator
    ) -> list[RRMatrix]:
        """Batch bound-repair for a list of matrices."""
        genomes = list(genomes)
        if self.delta is None or not genomes:
            return genomes
        return unstack_matrices(self.repair_stack(stack_matrices(genomes)))

    # -- stacked variation (used by the batched offspring pipeline) ------------
    def crossover_stack(
        self, first: np.ndarray, second: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched column crossover over paired parent stacks."""
        return column_crossover_batch(first, second, rng)

    def mutate_stack(self, stack: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Batched proportional column mutation (one mutation per matrix)."""
        return proportional_column_mutation_batch(stack, rng, scale=self.mutation_scale)

    def repair_stack(self, stack: np.ndarray) -> np.ndarray:
        """Batched bound repair; identity when no ``delta`` is configured."""
        if self.delta is None:
            return stack
        return enforce_privacy_bound_batch(stack, self.prior.probabilities, self.delta)
