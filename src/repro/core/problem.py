"""The RR-matrix optimization problem plugged into the EMOO engine.

Genomes are :class:`~repro.rr.matrix.RRMatrix` objects; the two minimised
objectives are ``(-privacy, utility)``; the variation operators are the
paper's column crossover and proportional column mutation; and the repair
step enforces the worst-case privacy bound ``delta`` when one is configured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.operators import (
    column_crossover,
    enforce_privacy_bound,
    proportional_column_mutation,
    random_initial_matrix,
)
from repro.data.distribution import CategoricalDistribution
from repro.emoo.individual import Individual
from repro.emoo.problem import Problem
from repro.metrics.evaluation import MatrixEvaluator
from repro.rr.matrix import RRMatrix
from repro.utils.validation import check_in_unit_interval, check_positive_int


@dataclass
class RRMatrixProblem(Problem):
    """Multi-objective problem: find RR matrices trading privacy vs utility.

    Parameters
    ----------
    prior:
        The original data distribution ``P(X)``.
    n_records:
        Number of records ``N`` used by the closed-form utility (Theorem 6).
    delta:
        Optional worst-case privacy bound (Eq. 9).
    mutation_scale:
        Magnitude bound of the mutation operator.
    diagonal_bias:
        Diagonal bias used for half of the random genomes (see
        :func:`repro.core.operators.random_initial_matrices`).
    """

    prior: CategoricalDistribution
    n_records: int
    delta: float | None = None
    mutation_scale: float = 0.3
    diagonal_bias: float = 2.0
    n_objectives: int = field(default=2, init=False)

    def __post_init__(self) -> None:
        if not isinstance(self.prior, CategoricalDistribution):
            self.prior = CategoricalDistribution(np.asarray(self.prior, dtype=np.float64))
        check_positive_int(self.n_records, "n_records")
        if self.delta is not None:
            check_in_unit_interval(self.delta, "delta", inclusive_low=False)
        check_in_unit_interval(self.mutation_scale, "mutation_scale", inclusive_low=False)
        self._evaluator = MatrixEvaluator(self.prior, self.n_records, self.delta)
        self._n_evaluations = 0
        self._counter = 0

    # -- bookkeeping -----------------------------------------------------------
    @property
    def n_categories(self) -> int:
        """Domain size of the optimised matrices."""
        return self.prior.n_categories

    @property
    def n_evaluations(self) -> int:
        """Number of matrix evaluations performed so far."""
        return self._n_evaluations

    @property
    def evaluator(self) -> MatrixEvaluator:
        """The underlying privacy/utility evaluator."""
        return self._evaluator

    # -- Problem interface -------------------------------------------------------
    def random_genome(self, rng: np.random.Generator) -> RRMatrix:
        """Create a random RR matrix, cycling through plain random,
        diagonally-biased and near-uniform draws so the initial front spans
        the whole privacy/utility trade-off."""
        self._counter += 1
        matrix = random_initial_matrix(
            self.n_categories, rng, kind=self._counter, diagonal_bias=self.diagonal_bias
        )
        return self.repair(matrix, rng)

    def evaluate(self, genome: RRMatrix) -> Individual:
        """Evaluate a matrix into an individual with objectives
        ``(-privacy, utility)``."""
        self._n_evaluations += 1
        evaluation = self._evaluator.evaluate(genome)
        # Non-invertible matrices have infinite utility; replace by a large
        # finite penalty so objective arrays stay finite for the indicators.
        utility = evaluation.utility if np.isfinite(evaluation.utility) else 1e6
        individual = Individual(
            genome=genome,
            objectives=np.array([-evaluation.privacy, utility], dtype=np.float64),
            feasible=evaluation.feasible,
            metadata={
                "privacy": evaluation.privacy,
                "utility": evaluation.utility,
                "max_posterior": evaluation.max_posterior,
                "invertible": evaluation.invertible,
            },
        )
        return individual

    def crossover(
        self, first: RRMatrix, second: RRMatrix, rng: np.random.Generator
    ) -> tuple[RRMatrix, RRMatrix]:
        """The paper's column-boundary crossover."""
        return column_crossover(first, second, rng)

    def mutate(self, genome: RRMatrix, rng: np.random.Generator) -> RRMatrix:
        """The paper's proportional column mutation."""
        return proportional_column_mutation(genome, rng, scale=self.mutation_scale)

    def repair(self, genome: RRMatrix, rng: np.random.Generator) -> RRMatrix:
        """Enforce the privacy bound when one is configured (Section V-G)."""
        if self.delta is None:
            return genome
        return enforce_privacy_bound(genome, self.prior.probabilities, self.delta)
