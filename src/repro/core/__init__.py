"""OptRR core: the paper's SPEA2-based search for optimal RR matrices.

This package turns the generic EMOO engine (:mod:`repro.emoo`) into the
paper's algorithm: RR matrices are the genomes, privacy (Eq. 8) and utility
(Theorem 6) are the two objectives, the variation operators respect the
column-stochastic constraint, a repair step enforces the worst-case bound
``delta`` (Eq. 9), and an unbounded-cost *optimal set* Ω keeps every good
matrix evicted from the bounded archive.
"""

from repro.core.config import OptRRConfig
from repro.core.archive import OptimalSet
from repro.core.driver import (
    DEFAULT_CHECKPOINT_EVERY,
    GenerationSnapshot,
    OptimizationDriver,
    SteppableOptimization,
    checkpoint_scope,
)
from repro.core.operators import (
    column_crossover,
    column_crossover_batch,
    enforce_privacy_bound,
    enforce_privacy_bound_batch,
    proportional_column_mutation,
    proportional_column_mutation_batch,
    random_initial_matrices,
)
from repro.core.problem import RRMatrixProblem
from repro.core.optimizer import OptRROptimizer
from repro.core.reference import reference_optrr_run
from repro.core.result import OptimizationResult, ParetoPoint
from repro.core.bruteforce import brute_force_front
from repro.core.search_space import rr_matrix_combinations

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "GenerationSnapshot",
    "OptRRConfig",
    "OptRROptimizer",
    "OptimalSet",
    "OptimizationDriver",
    "OptimizationResult",
    "SteppableOptimization",
    "checkpoint_scope",
    "ParetoPoint",
    "RRMatrixProblem",
    "brute_force_front",
    "reference_optrr_run",
    "column_crossover",
    "column_crossover_batch",
    "enforce_privacy_bound",
    "enforce_privacy_bound_batch",
    "proportional_column_mutation",
    "proportional_column_mutation_batch",
    "random_initial_matrices",
    "rr_matrix_combinations",
]
