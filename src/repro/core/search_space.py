"""Search-space size of the RR-matrix optimization problem (Fact 1).

If every matrix entry is restricted to the grid ``{0, 1/d, ..., 1}``, each
column is a composition of ``d`` into ``n`` non-negative parts, so there are
``C(d + n - 1, d)`` choices per column and ``C(d + n - 1, d)^n`` matrices in
total.  For ``n = 10`` and ``d = 100`` this is about ``1.98e126`` — the number
the paper quotes to motivate the evolutionary search.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive_int


def column_combinations(n_categories: int, d: int) -> int:
    """Number of discretised probability columns: ``C(d + n - 1, d)``."""
    check_positive_int(n_categories, "n_categories")
    check_positive_int(d, "d")
    return math.comb(d + n_categories - 1, d)


def rr_matrix_combinations(n_categories: int, d: int) -> int:
    """Total number of discretised RR matrices: ``C(d + n - 1, d)^n`` (Fact 1)."""
    return column_combinations(n_categories, d) ** n_categories


def log10_rr_matrix_combinations(n_categories: int, d: int) -> float:
    """Base-10 logarithm of the search-space size (exact combinations grow far
    beyond float range, so reporting the exponent is more practical)."""
    per_column = column_combinations(n_categories, d)
    return n_categories * math.log10(per_column)


def brute_force_is_feasible(
    n_categories: int, d: int, *, budget: int = 10_000_000
) -> bool:
    """Whether exhaustively enumerating the discretised matrices fits within
    ``budget`` evaluations (used to guard the brute-force baseline)."""
    check_positive_int(budget, "budget")
    # Compare in log space to avoid astronomically large integers.
    return log10_rr_matrix_combinations(n_categories, d) <= math.log10(budget)
