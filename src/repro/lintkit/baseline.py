"""Committed violation baseline.

A baseline entry suppresses one known violation by its content fingerprint
(rule id + path + whitespace-normalized source line, so entries survive
unrelated line-number drift).  The workflow:

* ``lint_repro.py --write-baseline`` snapshots the current violations into
  the baseline file with a ``TODO`` justification placeholder;
* each entry's ``justification`` must then be filled in by hand — the
  baseline is a reviewable list of debts, not a mute button;
* a **stale** entry (one that no longer matches any violation) fails the
  run, so fixed debts are deleted rather than accumulating;
* CI runs with ``--forbid-baseline``, which fails on *any* entry: new debts
  must be argued in review (by touching the CI flag) instead of slipping in
  through the baseline file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.lintkit.model import Violation

BASELINE_VERSION = 1
JUSTIFICATION_PLACEHOLDER = "TODO: justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    rule_id: str
    relpath: str
    fingerprint: str
    snippet: str
    justification: str


class Baseline:
    """The parsed baseline file (an absent file is an empty baseline)."""

    def __init__(self, entries: tuple[BaselineEntry, ...] = ()) -> None:
        self.entries = entries
        self._by_fingerprint = {entry.fingerprint: entry for entry in entries}

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, violation: Violation) -> bool:
        return violation.fingerprint() in self._by_fingerprint

    def stale_entries(self, violations: list[Violation]) -> list[BaselineEntry]:
        """Entries no longer matched by any current violation."""
        live = {violation.fingerprint() for violation in violations}
        return [entry for entry in self.entries if entry.fingerprint not in live]

    def unjustified_entries(self) -> list[BaselineEntry]:
        """Entries whose justification was never filled in."""
        return [
            entry
            for entry in self.entries
            if not entry.justification.strip()
            or entry.justification == JUSTIFICATION_PLACEHOLDER
        ]


def load_baseline(path: Path) -> Baseline:
    """Read ``path`` (absent -> empty baseline; malformed -> ValueError)."""
    if not path.is_file():
        return Baseline()
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict) or document.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a version-{BASELINE_VERSION} repro-lint baseline")
    entries = []
    for raw in document.get("entries", []):
        entries.append(
            BaselineEntry(
                rule_id=str(raw["rule"]),
                relpath=str(raw["path"]),
                fingerprint=str(raw["fingerprint"]),
                snippet=str(raw.get("snippet", "")),
                justification=str(raw.get("justification", "")),
            )
        )
    return Baseline(tuple(entries))


def write_baseline(path: Path, violations: list[Violation]) -> Baseline:
    """Snapshot ``violations`` into ``path`` (sorted, canonical JSON)."""
    entries = tuple(
        BaselineEntry(
            rule_id=violation.rule_id,
            relpath=violation.relpath,
            fingerprint=violation.fingerprint(),
            snippet=" ".join(violation.snippet.split()),
            justification=JUSTIFICATION_PLACEHOLDER,
        )
        for violation in sorted(
            violations, key=lambda v: (v.relpath, v.rule_id, v.line, v.column)
        )
    )
    document = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "rule": entry.rule_id,
                "path": entry.relpath,
                "fingerprint": entry.fingerprint,
                "snippet": entry.snippet,
                "justification": entry.justification,
            }
            for entry in entries
        ],
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return Baseline(entries)
