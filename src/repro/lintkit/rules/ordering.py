"""RL005 — ordering hazards.

Set iteration order depends on the hash seed and insertion history, and
"first match wins" scans over ``dict.values()``/``dict.keys()`` views bake
the dict's construction order into the result.  In the optimizer hot paths
(``src/repro/emoo``, ``src/repro/core``) such an order leak silently breaks
the bit-for-bit trajectory and kill/resume guarantees.  Flagged patterns:

* a ``for`` loop or comprehension iterating *directly* over a set literal,
  set comprehension, or ``set(...)``/``frozenset(...)`` call;
* ``next(...)`` consuming a generator over ``.values()``/``.keys()`` or a
  set expression — a first-match selection over an unordered (or
  construction-ordered) view.

Wrapping the iterable in ``sorted(...)`` resolves either; where the
construction order is provably deterministic and intentional, a
``# repro-lint: allow[ordering-hazard]`` pragma with a justification
records that argument next to the code.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lintkit.model import ProjectContext, SourceFile, Violation
from repro.lintkit.registry import Rule, register
from repro.lintkit.rules.rng import _dotted


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func)
        return dotted in ("set", "frozenset")
    return False


def _is_view_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("values", "keys")
        and not node.args
        and not node.keywords
    )


@register
class OrderingHazardRule(Rule):
    rule_id = "RL005"
    name = "ordering-hazard"
    description = (
        "iteration over sets (and first-match scans over dict views) in the "
        "optimizer hot paths must go through sorted(...)"
    )
    scopes = ("src/repro/emoo", "src/repro/core")

    def check_file(
        self, source: SourceFile, project: ProjectContext
    ) -> Iterable[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(source.tree):
            iterables: list[ast.expr] = []
            if isinstance(node, ast.For):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(generator.iter for generator in node.generators)
            for iterable in iterables:
                if _is_set_expression(iterable):
                    violations.append(
                        self.violation(
                            source,
                            iterable,
                            "iteration directly over a set: set order depends "
                            "on the hash seed — wrap it in sorted(...)",
                        )
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "next"
                and node.args
                and isinstance(node.args[0], ast.GeneratorExp)
            ):
                for generator in node.args[0].generators:
                    if _is_view_call(generator.iter) or _is_set_expression(generator.iter):
                        violations.append(
                            self.violation(
                                source,
                                generator.iter,
                                "first-match next(...) over an unordered/"
                                "construction-ordered view: sort the iterable "
                                "or justify the ordering with a pragma",
                            )
                        )
        return violations
