"""RL007 — exception discipline.

A resilient execution layer must *classify* failures, not erase them: retry
and quarantine decisions, failure manifests and corruption forensics all
depend on errors reaching the layer that records them.  A broad handler
that swallows — ``except Exception:`` / ``except BaseException:`` / a bare
``except:`` whose body neither re-raises, nor logs, nor so much as reads
the caught exception — deletes exactly that signal, and it does so
silently.

A broad handler counts as *disciplined* when its body does any of:

* re-raise (any ``raise`` statement, bare or not);
* log the failure (a ``*.debug/info/warning/error/exception/critical/log``
  method call);
* use the bound exception (``except Exception as exc:`` with ``exc`` read
  anywhere in the body — rendering it into an error message or shipping it
  over a pipe is handling, not swallowing).

Narrow handlers (``except OSError:`` and friends) are out of scope: naming
the exception type is already a classification decision.  Intentional
broad-and-silent sites — they exist, e.g. best-effort teardown — carry a
``# repro-lint: allow[RL007]`` pragma with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lintkit.model import ProjectContext, SourceFile, Violation
from repro.lintkit.registry import Rule, register

#: Catch-all exception classes a broad handler names.
BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})

#: Method names whose call counts as logging the failure.
LOGGING_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)


def _broad_name(annotation: ast.expr | None) -> str | None:
    """The catch-all class a handler names, or None for a narrow handler.

    A bare ``except:`` reports as ``BaseException`` (that is what it is).
    """
    if annotation is None:
        return "BaseException"
    if isinstance(annotation, ast.Name) and annotation.id in BROAD_EXCEPTION_NAMES:
        return annotation.id
    if isinstance(annotation, ast.Tuple):
        for element in annotation.elts:
            if isinstance(element, ast.Name) and element.id in BROAD_EXCEPTION_NAMES:
                return element.id
    return None


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body discards the exception entirely."""
    for statement in handler.body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Raise):
                return False
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in LOGGING_METHODS
            ):
                return False
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return False
    return True


@register
class ExceptionDisciplineRule(Rule):
    rule_id = "RL007"
    name = "exception-discipline"
    description = (
        "broad except handlers (Exception/BaseException/bare) must re-raise, "
        "log, or use the caught exception — silent swallowing erases the "
        "failure signal the resilience layer classifies"
    )
    scopes = ("src/repro",)

    def check_file(
        self, source: SourceFile, project: ProjectContext
    ) -> Iterable[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                caught = _broad_name(handler.type)
                if caught is None or not _handler_swallows(handler):
                    continue
                spelled = "bare `except:`" if handler.type is None else f"`except {caught}:`"
                violations.append(
                    self.violation(
                        source,
                        handler,
                        f"{spelled} swallows the failure (no re-raise, no "
                        f"logging, exception unused) — classify it, or "
                        f"justify the silence with a pragma",
                    )
                )
        return violations
