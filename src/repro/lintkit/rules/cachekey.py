"""RL004 — cache-key completeness.

Campaign/pipeline grid results are content-addressed by ``(version,
experiment id, effective overrides, seed)``.  The *effective overrides* are
the weak point: an override key whose runner-level default comes from the
environment must be materialized into
``environment_override_defaults()`` (``src/repro/experiments/base.py``) or
two runs under different environments share a cache key — exactly the
``low_fidelity_fraction`` incident this rule exists to prevent (PR 6 had to
hand-wire it in after the fact).

The rule cross-references three name sets, all extracted statically:

* the ``OptRRConfig`` field names (``src/repro/core/config.py``),
* every ``accepted_overrides`` key (``DEFAULT_ACCEPTED_OVERRIDES`` plus the
  per-spec tuples in ``src/repro/experiments/*.py``),
* the keys of the dict literal ``environment_override_defaults()`` returns.

Every accepted override key, and every config field, must either be
materialized or appear in :data:`EXEMPT_FIELDS` with a recorded reason.
The exemption list is the explicit, reviewable statement that a field
cannot cause a stale-cache replay.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lintkit.model import ProjectContext, SourceFile, Violation
from repro.lintkit.registry import Rule, register

CONFIG_PATH = "src/repro/core/config.py"
BASE_PATH = "src/repro/experiments/base.py"
EXPERIMENTS_DIR = "src/repro/experiments"
CONFIG_CLASS = "OptRRConfig"
MATERIALIZATION = "environment_override_defaults"
DEFAULT_TUPLE = "DEFAULT_ACCEPTED_OVERRIDES"

#: Fields that provably cannot cause a stale-cache replay, with the reason.
#: Everything else must be materialized into environment_override_defaults().
EXEMPT_FIELDS: dict[str, str] = {
    # Keyed separately: the cache key carries the seed verbatim.
    "seed": "cache-keyed verbatim as the task's seed field",
    # Pinned by the experiment spec: these are compile-time constants of the
    # runner, never environment-defaulted; a different value can only come
    # from an explicit override, which lands in the effective overrides (and
    # thus the key) on its own.
    "archive_size": "pinned by the experiment spec / explicit override only",
    "optimal_set_size": "pinned by the experiment spec / explicit override only",
    "stagnation_patience": "pinned by the experiment spec / explicit override only",
    "crossover_rate": "pinned by the experiment spec / explicit override only",
    "mutation_rate": "pinned by the experiment spec / explicit override only",
    "mutation_scale": "pinned by the experiment spec / explicit override only",
    "delta": "pinned by the experiment spec / explicit override only",
    "density_k": "pinned by the experiment spec / explicit override only",
    "diagonal_bias": "pinned by the experiment spec / explicit override only",
    "baseline_seeds": "pinned by the experiment spec / explicit override only",
    "promotion_fraction": "fixed at its default; no override or env channel",
    "min_fidelity": "fixed at its default; no override or env channel",
    # Explicit-only workload overrides: no environment default exists, so
    # they are always present in the effective overrides when set.
    "n_categories": "explicit-only override; no environment default",
    "d": "explicit-only override; no environment default",
}


def _config_fields(source: SourceFile) -> dict[str, int]:
    """``OptRRConfig`` field name -> declaration line."""
    fields: dict[str, int] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
            for item in node.body:
                if (
                    isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                    and not item.target.id.startswith("_")
                ):
                    fields[item.target.id] = item.lineno
    return fields


def _materialized_keys(source: SourceFile) -> tuple[dict[str, int], int | None]:
    """Keys of the dict ``environment_override_defaults`` returns, plus the
    function's line (None when the function is missing)."""
    for node in ast.walk(source.tree):
        if isinstance(node, ast.FunctionDef) and node.name == MATERIALIZATION:
            keys: dict[str, int] = {}
            for sub in ast.walk(node):
                if isinstance(sub, ast.Return) and isinstance(sub.value, ast.Dict):
                    for key in sub.value.keys:
                        if isinstance(key, ast.Constant) and isinstance(key.value, str):
                            keys.setdefault(key.value, key.lineno)
            return keys, node.lineno
    return {}, None


def _string_tuple(node: ast.expr) -> list[str]:
    if isinstance(node, (ast.Tuple, ast.List)):
        return [
            element.value
            for element in node.elts
            if isinstance(element, ast.Constant) and isinstance(element.value, str)
        ]
    return []


def _accepted_override_keys(
    project: ProjectContext,
) -> list[tuple[str, SourceFile, int]]:
    """Every accepted override key with the file/line that declares it."""
    keys: list[tuple[str, SourceFile, int]] = []
    base = project.source_at(BASE_PATH)
    if base is not None:
        for node in ast.walk(base.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == DEFAULT_TUPLE:
                        for key in _string_tuple(node.value):
                            keys.append((key, base, node.lineno))
    directory = project.root / EXPERIMENTS_DIR
    if directory.is_dir():
        for path in sorted(directory.glob("*.py")):
            source = project.source(path)
            if source is None:
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, ast.keyword) and node.arg == "accepted_overrides":
                    for key in _string_tuple(node.value):
                        keys.append((key, source, node.value.lineno))
    return keys


@register
class CacheKeyCompletenessRule(Rule):
    rule_id = "RL004"
    name = "cache-key-completeness"
    description = (
        "every OptRRConfig field and accepted override key must be "
        "materialized into environment_override_defaults() or explicitly "
        "exempted"
    )
    scopes = ()  # project-level: reads its target files directly

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        config = project.source_at(CONFIG_PATH)
        base = project.source_at(BASE_PATH)
        if config is None or base is None:
            # Not this project shape (e.g. a partial tree); nothing to check.
            return ()
        materialized, registry_line = _materialized_keys(base)
        violations: list[Violation] = []
        if registry_line is None:
            violations.append(
                self.violation(
                    base,
                    1,
                    f"{MATERIALIZATION}() not found in {BASE_PATH}: the "
                    f"cache-key materialization registry is missing",
                )
            )
            return violations
        seen: set[tuple[str, str]] = set()
        for key, source, line in _accepted_override_keys(project):
            if key in materialized or key in EXEMPT_FIELDS:
                continue
            if (source.relpath, key) in seen:
                continue
            seen.add((source.relpath, key))
            violations.append(
                self.violation(
                    source,
                    line,
                    f"override key {key!r} is accepted but never materialized "
                    f"in {MATERIALIZATION}() ({BASE_PATH}): a cached result "
                    f"could be replayed across an environment that changes it; "
                    f"materialize it or exempt it in EXEMPT_FIELDS with a "
                    f"reason",
                )
            )
        for field, line in sorted(_config_fields(config).items()):
            if field in materialized or field in EXEMPT_FIELDS:
                continue
            violations.append(
                self.violation(
                    config,
                    line,
                    f"OptRRConfig.{field} is neither materialized in "
                    f"{MATERIALIZATION}() ({BASE_PATH}) nor exempted: decide "
                    f"whether it can affect cached results and record the "
                    f"decision (materialize it, or add it to EXEMPT_FIELDS "
                    f"with a reason)",
                )
            )
        return violations
