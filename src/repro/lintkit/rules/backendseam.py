"""RL006 — backend-seam discipline.

The (B, n, n) hot kernels live behind the array-backend seam
(:mod:`repro.backend`): callers obtain the active backend via
``active_backend()`` and invoke its kernels, so alternative backends
(fused numpy, jitted numba, ...) can be swapped in without touching the
callers — and so the cross-backend equivalence suite is the single place
where numerical behaviour is pinned down.  That guarantee collapses as soon
as a seam-owned module grows a *private* linear-algebra path next to the
backend one: the direct path silently diverges from whatever backend the
user selected, and no equivalence test covers it.

This rule therefore bans, inside the seam-owned modules only:

* direct ``np.linalg.*`` / ``numpy.linalg.*`` use — batched inversion
  belongs to the backend's ``batched_safe_inverses`` kernel;
* ``scipy`` imports — the scipy-vs-einsum choice for pairwise distances is
  an implementation detail of the backend's ``pairwise_distances`` kernel;
* importing the inversion helpers (``safe_inverse``,
  ``batched_safe_inverses``) straight from :mod:`repro.utils.linalg`,
  which bypasses the backend dispatch (the classification helpers such as
  ``DEFAULT_CONDITION_LIMIT`` remain importable — they are configuration,
  not kernels).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lintkit.model import ProjectContext, SourceFile, Violation
from repro.lintkit.registry import Rule, register
from repro.lintkit.rules.rng import _dotted

#: The seam-owned modules: every (B, n, n) hot-kernel call site.  The rule
#: deliberately scopes to these exact files — ``repro.utils.linalg`` and the
#: backend package itself legitimately contain the direct implementations.
SEAM_OWNED_FILES = (
    "src/repro/metrics/evaluation.py",
    "src/repro/emoo/density.py",
    "src/repro/core/operators.py",
    "src/repro/rr/randomize.py",
)

#: Dotted prefixes that resolve to the numpy.linalg namespace in this repo.
_NP_LINALG_PREFIXES = ("np.linalg", "numpy.linalg")

#: Names in repro.utils.linalg whose direct import bypasses the backend's
#: ``batched_safe_inverses`` kernel dispatch.
BANNED_LINALG_IMPORTS = frozenset({"safe_inverse", "batched_safe_inverses"})


@register
class BackendSeamRule(Rule):
    rule_id = "RL006"
    name = "backend-seam-discipline"
    description = (
        "seam-owned hot-kernel modules must dispatch through the active "
        "array backend; direct np.linalg use, scipy imports and direct "
        "inversion-helper imports are banned there"
    )
    scopes = SEAM_OWNED_FILES

    def check_file(
        self, source: SourceFile, project: ProjectContext
    ) -> Iterable[Violation]:
        suffix = (
            "; dispatch through the active array backend "
            "(repro.backend.registry.active_backend) so the equivalence "
            "suite covers every numerical path"
        )
        violations: list[Violation] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Attribute):
                dotted = _dotted(node.value)
                if dotted in _NP_LINALG_PREFIXES:
                    violations.append(
                        self.violation(
                            source,
                            node,
                            f"direct `{dotted}.{node.attr}` in a seam-owned "
                            f"module{suffix}",
                        )
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "scipy" or alias.name.startswith("scipy."):
                        violations.append(
                            self.violation(
                                source,
                                node,
                                f"`import {alias.name}` in a seam-owned "
                                f"module{suffix}",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "scipy" or module.startswith("scipy."):
                    violations.append(
                        self.violation(
                            source,
                            node,
                            f"`from {module} import ...` in a seam-owned "
                            f"module{suffix}",
                        )
                    )
                elif module == "repro.utils.linalg":
                    for alias in node.names:
                        if alias.name in BANNED_LINALG_IMPORTS:
                            violations.append(
                                self.violation(
                                    source,
                                    node,
                                    f"`from repro.utils.linalg import "
                                    f"{alias.name}` bypasses the backend's "
                                    f"batched_safe_inverses kernel{suffix}",
                                )
                            )
        return violations
