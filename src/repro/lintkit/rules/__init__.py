"""The repro-lint rule set.

Importing this package registers every rule; the ids are stable and
documented in ``docs/invariants.md``:

* RL001 ``rng-discipline`` — seeded-Generator-only randomness
* RL002 ``wall-clock`` — no nondeterminism sources outside the timing sites
* RL003 ``checkpoint-symmetry`` — state_document/restore_state pairing + keys
* RL004 ``cache-key-completeness`` — overrides materialized into cache keys
* RL005 ``ordering-hazard`` — no unordered iteration in optimizer hot paths
* RL006 ``backend-seam-discipline`` — hot-kernel call sites dispatch through
  the active array backend
* RL007 ``exception-discipline`` — broad except handlers must re-raise, log,
  or use the caught exception
"""

from repro.lintkit.rules.backendseam import BackendSeamRule
from repro.lintkit.rules.cachekey import CacheKeyCompletenessRule
from repro.lintkit.rules.checkpoint import CheckpointSymmetryRule
from repro.lintkit.rules.exceptions import ExceptionDisciplineRule
from repro.lintkit.rules.ordering import OrderingHazardRule
from repro.lintkit.rules.rng import RngDisciplineRule
from repro.lintkit.rules.wallclock import WallClockRule

__all__ = [
    "BackendSeamRule",
    "CacheKeyCompletenessRule",
    "CheckpointSymmetryRule",
    "ExceptionDisciplineRule",
    "OrderingHazardRule",
    "RngDisciplineRule",
    "WallClockRule",
]
