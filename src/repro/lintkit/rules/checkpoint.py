"""RL003 — checkpoint codec symmetry.

The kill/resume invariant (resume == uninterrupted run, bit for bit) holds
only when every ``state_document`` has a ``restore_state`` that reads back
exactly what was written.  This rule enforces the two static halves of that
contract:

* **pairing** — a class defining one of ``state_document`` /
  ``restore_state`` must define the other;
* **key symmetry** — the literal dict keys the pair writes and reads must
  match: a key written but never read is state silently dropped on resume,
  a key read but never written is a typo that surfaces as a KeyError (or a
  silently-defaulted ``.get``) in the middle of a restore.

Key extraction is deliberately literal-only: keys written into the returned
dict (dict-literal keys plus ``document["key"] = ...`` subscript stores on
the returned name) versus keys read off the document parameter
(``document["key"]`` / ``document.get("key")``).  When either side has no
extractable keys — delegating codecs, trivial ``return {}`` bodies — the
comparison is skipped; the pairing check still applies.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lintkit.model import ProjectContext, SourceFile, Violation
from repro.lintkit.registry import Rule, register

WRITER = "state_document"
READER = "restore_state"


def _written_keys(func: ast.FunctionDef) -> dict[str, int]:
    """Literal keys written into the dict ``state_document`` returns, mapped
    to the line each key is written on."""
    returned_names: set[str] = set()
    literal_keys: dict[str, int] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        literal_keys.setdefault(key.value, key.lineno)
            elif isinstance(node.value, ast.Name):
                returned_names.add(node.value.id)
    if not returned_names:
        return literal_keys
    for node in ast.walk(func):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in returned_names
                and isinstance(value, ast.Dict)
            ):
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        literal_keys.setdefault(key.value, key.lineno)
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in returned_names
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                literal_keys.setdefault(target.slice.value, target.lineno)
    return literal_keys


def _read_keys(func: ast.FunctionDef) -> dict[str, int]:
    """Literal keys ``restore_state`` reads off its document parameter."""
    positional = func.args.posonlyargs + func.args.args
    if len(positional) < 2:
        return {}
    parameter = positional[1].arg
    keys: dict[str, int] = {}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == parameter
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
            and isinstance(getattr(node, "ctx", None), ast.Load)
        ):
            keys.setdefault(node.slice.value, node.lineno)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == parameter
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.setdefault(node.args[0].value, node.lineno)
    return keys


@register
class CheckpointSymmetryRule(Rule):
    rule_id = "RL003"
    name = "checkpoint-symmetry"
    description = (
        "state_document/restore_state must come in pairs and agree on the "
        "literal dict keys they write and read"
    )
    scopes = ("src/repro",)

    def check_file(
        self, source: SourceFile, project: ProjectContext
    ) -> Iterable[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            writer = methods.get(WRITER)
            reader = methods.get(READER)
            if writer is None and reader is None:
                continue
            if writer is None or reader is None:
                present, missing = (WRITER, READER) if reader is None else (READER, WRITER)
                violations.append(
                    self.violation(
                        source,
                        node,
                        f"class {node.name} defines {present} without "
                        f"{missing}: checkpoint codecs must come in "
                        f"symmetric pairs",
                    )
                )
                continue
            written = _written_keys(writer)
            read = _read_keys(reader)
            if not written or not read:
                continue
            for key, line in sorted(written.items()):
                if key not in read:
                    violations.append(
                        self.violation(
                            source,
                            line,
                            f"{node.name}.{WRITER} writes key {key!r} that "
                            f"{READER} never reads: state silently dropped "
                            f"on resume",
                        )
                    )
            for key, line in sorted(read.items()):
                if key not in written:
                    violations.append(
                        self.violation(
                            source,
                            line,
                            f"{node.name}.{READER} reads key {key!r} that "
                            f"{WRITER} never writes: resume would miss or "
                            f"mis-default it",
                        )
                    )
        return violations
