"""RL001 — RNG discipline.

Every random draw in the library must flow through a seeded
:class:`numpy.random.Generator` threaded down from the caller — that is the
repo's only sanctioned randomness channel, and the reason seeded runs are
bit-for-bit reproducible (and kill/resume-safe: the bit-generator state
rides the checkpoint).  This rule flags the three ways code escapes that
channel:

* the legacy ``np.random.*`` global-state API (``np.random.seed``,
  ``np.random.rand``, ``RandomState``, ...) — global state is invisible to
  the checkpoint codec and shared across call sites;
* ``default_rng()`` called without a seed — a fresh OS-entropy generator on
  every call;
* the stdlib :mod:`random` module — separate global state with no
  Generator-typed handle to thread.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lintkit.model import ProjectContext, SourceFile, Violation
from repro.lintkit.registry import Rule, register

#: numpy.random attributes that belong to the sanctioned Generator API.
ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: Dotted prefixes that resolve to the numpy.random namespace in this repo.
_NP_RANDOM_PREFIXES = ("np.random", "numpy.random")


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@register
class RngDisciplineRule(Rule):
    rule_id = "RL001"
    name = "rng-discipline"
    description = (
        "randomness must flow through a seeded np.random.Generator parameter; "
        "legacy np.random globals, unseeded default_rng() and the stdlib "
        "random module are banned"
    )
    scopes = ("src/repro", "examples")

    def check_file(
        self, source: SourceFile, project: ProjectContext
    ) -> Iterable[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        violations.append(
                            self.violation(
                                source,
                                node,
                                "stdlib `random` is banned: thread a seeded "
                                "np.random.Generator parameter instead",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    violations.append(
                        self.violation(
                            source,
                            node,
                            "stdlib `random` is banned: thread a seeded "
                            "np.random.Generator parameter instead",
                        )
                    )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in ALLOWED_NP_RANDOM:
                            violations.append(
                                self.violation(
                                    source,
                                    node,
                                    f"legacy numpy.random API "
                                    f"`{alias.name}` imported: only the "
                                    f"Generator API "
                                    f"({', '.join(sorted(ALLOWED_NP_RANDOM))}) "
                                    f"is sanctioned",
                                )
                            )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node.value)
                if dotted in _NP_RANDOM_PREFIXES and node.attr not in ALLOWED_NP_RANDOM:
                    violations.append(
                        self.violation(
                            source,
                            node,
                            f"legacy global-state API `{dotted}.{node.attr}`: "
                            "use a seeded np.random.Generator threaded from "
                            "the caller",
                        )
                    )
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if (
                    dotted in ("default_rng", "np.random.default_rng", "numpy.random.default_rng")
                    and not node.args
                    and not node.keywords
                ):
                    violations.append(
                        self.violation(
                            source,
                            node,
                            "unseeded default_rng(): every Generator must be "
                            "constructed from an explicit seed",
                        )
                    )
        return violations
