"""RL002 — wall-clock and other nondeterminism sources.

A reproducible run may not observe the environment: wall-clock reads,
OS-entropy draws and UUIDs all make two identical invocations diverge.  The
only sanctioned timing sites are the stepwise driver (which *measures*
elapsed wall time so it can ride the checkpoint as data) and the
``Deadline`` termination criterion that consumes it — both allowlisted by
path below.  Everywhere else under ``src/repro``, timing belongs in the
benchmark harness and entropy belongs to the seeded Generator channel
(RL001).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lintkit.model import ProjectContext, SourceFile, Violation
from repro.lintkit.registry import Rule, register
from repro.lintkit.rules.rng import _dotted

#: Files allowed to read the wall clock: the driver measures elapsed time
#: (checkpointed as data), Deadline consumes it, and the kill-and-replace
#: process runner needs monotonic deadlines for cell timeouts and backoff
#: scheduling (none of which can reach a result document).
ALLOWED_TIMING_FILES = frozenset(
    {
        "src/repro/emoo/driver.py",
        "src/repro/emoo/termination.py",
        "src/repro/experiments/procpool.py",
    }
)

#: Dotted call names that read the clock or the OS entropy pool.
BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: from-import leaves that smuggle a banned callable in under a bare name.
BANNED_FROM_IMPORTS = {
    "time": frozenset(
        {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
    ),
    "os": frozenset({"urandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
}


@register
class WallClockRule(Rule):
    rule_id = "RL002"
    name = "wall-clock"
    description = (
        "wall-clock reads, OS entropy and UUIDs are banned outside the "
        "allowlisted Deadline/driver timing sites"
    )
    scopes = ("src/repro",)

    def check_file(
        self, source: SourceFile, project: ProjectContext
    ) -> Iterable[Violation]:
        if source.relpath in ALLOWED_TIMING_FILES:
            return ()
        suffix = (
            "; timing belongs to the driver/Deadline sites "
            "(src/repro/emoo/driver.py, src/repro/emoo/termination.py), "
            "entropy to the seeded Generator channel"
        )
        violations: list[Violation] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in BANNED_CALLS:
                    violations.append(
                        self.violation(
                            source,
                            node,
                            f"nondeterminism source `{dotted}()`{suffix}",
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                banned = BANNED_FROM_IMPORTS.get(node.module or "")
                if banned:
                    for alias in node.names:
                        if alias.name in banned:
                            violations.append(
                                self.violation(
                                    source,
                                    node,
                                    f"`from {node.module} import {alias.name}` "
                                    f"smuggles a nondeterminism source in "
                                    f"under a bare name{suffix}",
                                )
                            )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "secrets":
                        violations.append(
                            self.violation(
                                source,
                                node,
                                f"the `secrets` module is OS entropy by "
                                f"design{suffix}",
                            )
                        )
        return violations
