"""Core data model of the repro-lint analyzer.

The analyzer works on two objects:

* :class:`SourceFile` — one parsed Python file: raw text, split lines, a
  lazily built :mod:`ast` tree, and the per-line pragma index
  (``# repro-lint: allow[<rule>]`` comments, see
  :mod:`repro.lintkit.pragmas`).
* :class:`ProjectContext` — the project being analyzed: its root directory,
  the selected files, and a cached loader so cross-file rules (cache-key
  completeness) can read companion files exactly once.

Everything here is pure stdlib so the analyzer stays importable in minimal
CI environments.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path

from repro.lintkit.pragmas import parse_pragmas


@dataclass(frozen=True)
class Violation:
    """One rule finding, anchored to a source line.

    The ``snippet`` (whitespace-normalized source line) — not the line
    number — feeds the baseline fingerprint, so unrelated edits that shift
    a file do not invalidate baseline entries.
    """

    rule_id: str
    rule_name: str
    relpath: str
    line: int
    column: int
    message: str
    snippet: str

    def fingerprint(self) -> str:
        """Stable identity of this violation for the baseline file."""
        normalized = " ".join(self.snippet.split())
        payload = f"{self.rule_id}:{self.relpath}:{normalized}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        """One ``path:line:col: RLnnn[name] message`` report line."""
        return (
            f"{self.relpath}:{self.line}:{self.column}: "
            f"{self.rule_id}[{self.rule_name}] {self.message}"
        )


class SourceFile:
    """One Python file under analysis."""

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()

    @cached_property
    def tree(self) -> ast.AST:
        """The parsed module (raises :class:`SyntaxError` on broken files —
        the runner reports that as a violation instead of crashing)."""
        return ast.parse(self.text, filename=self.relpath)

    @cached_property
    def pragmas(self) -> dict[int, frozenset[str]]:
        """Line number -> rule tokens allowed on that line."""
        return parse_pragmas(self.text)

    def line_text(self, line: int) -> str:
        """The 1-indexed source line (empty string out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def allows(self, line: int, tokens: frozenset[str]) -> bool:
        """Whether a pragma on ``line`` suppresses a rule identified by any
        of ``tokens`` (its id, its name, or the ``*`` wildcard)."""
        allowed = self.pragmas.get(line)
        if not allowed:
            return False
        return bool(allowed & tokens) or "*" in allowed


@dataclass
class ProjectContext:
    """The project being analyzed.

    Attributes
    ----------
    root:
        Project root; every reported path is relative to it.
    files:
        The selected files, in deterministic (sorted) order.
    """

    root: Path
    files: list[Path] = field(default_factory=list)
    _cache: dict[str, SourceFile | None] = field(default_factory=dict, repr=False)

    def relpath(self, path: Path) -> str:
        """POSIX-style path of ``path`` relative to the root (absolute when
        the file lies outside the root)."""
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.resolve().as_posix()

    def source(self, path: Path) -> SourceFile | None:
        """Load (and cache) ``path`` as a :class:`SourceFile`; None when the
        file does not exist or cannot be read."""
        relpath = self.relpath(path)
        if relpath not in self._cache:
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                self._cache[relpath] = None
            else:
                self._cache[relpath] = SourceFile(path, relpath, text)
        return self._cache[relpath]

    def source_at(self, relpath: str) -> SourceFile | None:
        """Load the project file at root-relative ``relpath`` (None when
        absent) — used by cross-file rules that read companion files
        regardless of the selected file set."""
        return self.source(self.root / relpath)
