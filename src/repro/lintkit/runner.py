"""File collection, rule execution and reporting.

The runner is shared by the two entry points — ``tools/lint_repro.py`` and
``optrr lint`` — via :func:`configure_parser`/:func:`run_from_args`, so the
flags and semantics cannot drift apart.

Execution order is fully deterministic: files are collected sorted, rules
run ordered by id, and violations are reported sorted by (path, line,
column, rule).  Exit codes: 0 clean, 1 violations/stale baseline, 2 usage
errors (unreadable baseline, bad paths).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Sequence

from repro.lintkit.baseline import Baseline, load_baseline, write_baseline
from repro.lintkit.model import ProjectContext, SourceFile, Violation
from repro.lintkit.registry import Rule, all_rules

#: Path roots scanned when no explicit paths are given (relative to --root).
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples", "tools")

#: Directory names never descended into.  ``lint_fixtures`` holds the rule
#: self-test fixtures — deliberately violating files that must not fail the
#: tree-wide run.
EXCLUDED_DIR_NAMES = frozenset({"__pycache__", "lint_fixtures", ".git", ".repro-lint"})

#: Default committed baseline location (relative to --root).
DEFAULT_BASELINE = "tools/repro_lint_baseline.json"


def collect_files(root: Path, paths: Sequence[Path]) -> list[Path]:
    """Every ``*.py`` file under ``paths``, sorted, excluded dirs pruned.

    Exclusion is relative to each search path: pointing the analyzer *at* a
    fixture tree works (its own self-tests do), while a tree-wide run never
    descends into one.
    """
    collected: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            collected.add(path.resolve())
            continue
        if not path.is_dir():
            continue
        for candidate in path.rglob("*.py"):
            relative_parts = candidate.relative_to(path).parts
            if EXCLUDED_DIR_NAMES.isdisjoint(relative_parts):
                collected.add(candidate.resolve())
    return sorted(collected)


def run_rules(
    project: ProjectContext, rules: Sequence[Rule] | None = None
) -> list[Violation]:
    """All violations of ``rules`` over ``project`` (pragmas applied,
    baseline not)."""
    if rules is None:
        rules = all_rules()
    violations: list[Violation] = []
    for rule in rules:
        found: list[Violation] = []
        for path in project.files:
            relpath = project.relpath(path)
            if not rule.applies_to(relpath):
                continue
            source = project.source(path)
            if source is None:
                continue
            try:
                source.tree
            except SyntaxError as error:
                # Reported once (by the first rule that reaches the file).
                if not any(v.relpath == relpath and v.rule_id == "RL000" for v in violations):
                    violations.append(
                        Violation(
                            rule_id="RL000",
                            rule_name="syntax-error",
                            relpath=relpath,
                            line=error.lineno or 1,
                            column=(error.offset or 1),
                            message=f"file does not parse: {error.msg}",
                            snippet=source.line_text(error.lineno or 1).strip(),
                        )
                    )
                continue
            found.extend(rule.check_file(source, project))
        found.extend(rule.check_project(project))
        tokens = rule.tokens()
        for violation in found:
            source = project.source_at(violation.relpath)
            if source is not None and source.allows(violation.line, tokens):
                continue
            violations.append(violation)
    violations.sort(key=lambda v: (v.relpath, v.line, v.column, v.rule_id))
    return violations


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the shared repro-lint flags to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_ROOTS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot the current violations into the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file: report every violation",
    )
    parser.add_argument(
        "--forbid-baseline",
        action="store_true",
        help="fail when the baseline contains any entry (CI mode: new "
             "baseline entries must be argued in review, not committed "
             "silently)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the registered rules and exit"
    )


def run_from_args(
    args: argparse.Namespace, *, out: Callable[[str], None] | None = None
) -> int:
    """Execute a repro-lint run for parsed ``args``; returns the exit code."""
    echo = out if out is not None else lambda line: print(line)
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            echo(f"{rule.rule_id}  {rule.name:24s} {rule.description}")
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"repro-lint: error: --root {args.root!r} is not a directory", file=sys.stderr)
        return 2
    if args.paths:
        paths = [Path(raw) if Path(raw).is_absolute() else root / raw for raw in args.paths]
        missing = [str(path) for path in paths if not path.exists()]
        if missing:
            print(
                f"repro-lint: error: path(s) do not exist: {', '.join(missing)}",
                file=sys.stderr,
            )
            return 2
    else:
        paths = [root / name for name in DEFAULT_ROOTS]

    baseline_path = (
        Path(args.baseline).resolve()
        if args.baseline is not None
        else root / DEFAULT_BASELINE
    )
    try:
        baseline = Baseline() if args.no_baseline else load_baseline(baseline_path)
    except (ValueError, OSError) as error:
        print(f"repro-lint: error: unreadable baseline: {error}", file=sys.stderr)
        return 2

    project = ProjectContext(root=root, files=collect_files(root, paths))
    violations = run_rules(project, rules)

    if args.write_baseline:
        write_baseline(baseline_path, violations)
        echo(
            f"repro-lint: wrote {len(violations)} entr"
            f"{'y' if len(violations) == 1 else 'ies'} to {baseline_path}"
            + (" — fill in every justification" if violations else "")
        )
        return 0

    failures = 0
    fresh = [violation for violation in violations if not baseline.matches(violation)]
    for violation in fresh:
        echo(violation.format())
    failures += len(fresh)

    if not args.no_baseline:
        for entry in baseline.stale_entries(violations):
            echo(
                f"{entry.relpath}: stale baseline entry {entry.fingerprint} "
                f"({entry.rule_id}): the violation is gone — delete the entry"
            )
            failures += 1
        for entry in baseline.unjustified_entries():
            echo(
                f"{entry.relpath}: baseline entry {entry.fingerprint} "
                f"({entry.rule_id}) has no justification"
            )
            failures += 1
        if args.forbid_baseline and len(baseline):
            echo(
                f"repro-lint: baseline holds {len(baseline)} entr"
                f"{'y' if len(baseline) == 1 else 'ies'} but --forbid-baseline "
                f"is set: fix the violations or argue the entries in review"
            )
            failures += len(baseline)

    suppressed = len(violations) - len(fresh)
    summary = (
        f"repro-lint: {len(project.files)} file(s), {len(rules)} rule(s): "
        f"{len(fresh)} violation(s)"
    )
    if suppressed:
        summary += f", {suppressed} baselined"
    echo(summary)
    return 1 if failures else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Stand-alone entry point (used by ``tools/lint_repro.py``)."""
    parser = argparse.ArgumentParser(
        prog="lint_repro",
        description="repro-lint: AST invariant analyzer for determinism, "
                    "checkpoint symmetry and cache-key completeness",
    )
    configure_parser(parser)
    return run_from_args(parser.parse_args(argv))
