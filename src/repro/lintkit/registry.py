"""Rule base class and registry.

A rule is a class with a stable id (``RLnnn``), a human-readable kebab-case
name, a description, and one or both hooks:

* :meth:`Rule.check_file` — called once per selected file whose
  project-relative path falls under the rule's ``scopes`` prefixes;
* :meth:`Rule.check_project` — called once per run for cross-file
  invariants (the rule reads companion files itself through the
  :class:`~repro.lintkit.model.ProjectContext`).

Rules register themselves with the :func:`register` decorator at import
time; :func:`all_rules` returns one instance of each, ordered by id, so a
run is deterministic regardless of registration order.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lintkit.model import ProjectContext, SourceFile, Violation

_REGISTRY: dict[str, type["Rule"]] = {}


class Rule:
    """Base class of every repro-lint rule."""

    rule_id: str = ""
    name: str = ""
    description: str = ""
    #: Project-relative path prefixes this rule's file hook applies to.
    scopes: tuple[str, ...] = ("src/repro",)

    def tokens(self) -> frozenset[str]:
        """The pragma/baseline tokens identifying this rule."""
        return frozenset({self.rule_id, self.name})

    def applies_to(self, relpath: str) -> bool:
        """Whether the file hook runs on the file at ``relpath``."""
        return any(
            relpath == scope or relpath.startswith(scope + "/") for scope in self.scopes
        )

    def check_file(
        self, source: SourceFile, project: ProjectContext
    ) -> Iterable[Violation]:
        """Per-file hook (default: no findings)."""
        return ()

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        """Once-per-run cross-file hook (default: no findings)."""
        return ()

    def violation(
        self,
        source: SourceFile,
        node: ast.AST | int,
        message: str,
        *,
        column: int | None = None,
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node`` (an AST node or a
        1-indexed line number) in ``source``."""
        if isinstance(node, int):
            line = node
            col = 1 if column is None else column
        else:
            line = getattr(node, "lineno", 1)
            col = (getattr(node, "col_offset", 0) + 1) if column is None else column
        return Violation(
            rule_id=self.rule_id,
            rule_name=self.name,
            relpath=source.relpath,
            line=line,
            column=col,
            message=message,
            snippet=source.line_text(line).strip(),
        )


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (ids must be unique)."""
    if not cls.rule_id or not cls.name:
        raise ValueError(f"rule {cls.__name__} needs a rule_id and a name")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """One instance of every registered rule, ordered by rule id."""
    import repro.lintkit.rules  # noqa: F401  (registration side effects)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def iter_rule_tokens() -> Iterator[tuple[str, str]]:
    """(id, name) pairs of the registered rules, ordered by id."""
    for rule in all_rules():
        yield rule.rule_id, rule.name
