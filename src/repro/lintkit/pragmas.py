"""Per-line suppression pragmas.

A violation anchored to a line carrying::

    # repro-lint: allow[<rule>, <rule>, ...]

is suppressed, where ``<rule>`` is a rule id (``RL003``), a rule name
(``checkpoint-symmetry``), or ``*`` (any rule).  Pragmas are deliberately
per-line — a justification comment should sit next to the code it excuses —
and are parsed from real COMMENT tokens (via :mod:`tokenize`), so pragma
text inside string literals can never accidentally suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize

#: The pragma payload inside a comment token.
PRAGMA_PATTERN = re.compile(r"#\s*repro-lint:\s*allow\[([^\]]*)\]")


def parse_pragmas(text: str) -> dict[int, frozenset[str]]:
    """Map line numbers to the rule tokens allowed on that line.

    Files that :mod:`tokenize` rejects (it is stricter than ``ast`` about a
    few encodings) fall back to a plain line scan; by then the runner has
    already reported any syntax error through the parse step.
    """
    allowed: dict[int, frozenset[str]] = {}

    def record(line: int, comment: str) -> None:
        match = PRAGMA_PATTERN.search(comment)
        if match is None:
            return
        tokens = frozenset(
            token.strip() for token in match.group(1).split(",") if token.strip()
        )
        if tokens:
            allowed[line] = allowed.get(line, frozenset()) | tokens

    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                record(token.start[0], token.string)
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        for number, line in enumerate(text.splitlines(), start=1):
            if "#" in line:
                record(number, line[line.index("#"):])
    return allowed
