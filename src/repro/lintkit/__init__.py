"""repro-lint: AST invariant analyzer for the reproduction's contracts.

The repo's production claims rest on invariants that used to be enforced
only dynamically (and expensively): seeded-Generator-only randomness,
wall-clock isolation, bit-identical kill/resume, complete cache keys, and
order-stable optimizer hot paths.  This package checks their static halves
at lint time — rule ids, the pragma syntax and the baseline workflow are
documented in ``docs/invariants.md``.

Entry points: ``tools/lint_repro.py`` and ``optrr lint``.
"""

from repro.lintkit.baseline import Baseline, load_baseline, write_baseline
from repro.lintkit.model import ProjectContext, SourceFile, Violation
from repro.lintkit.registry import Rule, all_rules, register
from repro.lintkit.runner import collect_files, main, run_rules

__all__ = [
    "Baseline",
    "ProjectContext",
    "Rule",
    "SourceFile",
    "Violation",
    "all_rules",
    "collect_files",
    "load_baseline",
    "main",
    "register",
    "run_rules",
    "write_baseline",
]
