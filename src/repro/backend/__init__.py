"""Pluggable array backends for the (B, n, n) hot kernels.

Importing this package registers the built-in backends:

* ``numpy`` — the bit-exact reference (default);
* ``numpy-fused`` — einsum-fused contractions + reused workspaces;
* ``numba`` — jitted kernels, registered only when numba is importable
  (otherwise it is recorded as known-but-unavailable with an install hint).

See :mod:`repro.backend.base` for the kernel protocol and the exactness
contract, and :mod:`repro.backend.registry` for selection precedence
(explicit > ``REPRO_BACKEND`` > ``numpy``).
"""

from __future__ import annotations

from repro.backend.base import EQUIVALENCE_RTOL, KERNELS, ArrayBackend
from repro.backend.fused import FusedNumpyBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    active_backend,
    active_backend_name,
    backend_names,
    get_backend,
    known_backend_names,
    register_backend,
    register_unavailable_backend,
    reset_active_backend,
    resolve_backend_name,
    set_active_backend,
    use_backend,
)
from repro.backend import numba_backend as _numba_backend

register_backend(NumpyBackend())
register_backend(FusedNumpyBackend())
if _numba_backend.NUMBA_AVAILABLE:  # pragma: no cover - optional dependency
    register_backend(_numba_backend.NumbaBackend())
else:
    register_unavailable_backend("numba", _numba_backend.INSTALL_HINT)

__all__ = [
    "ArrayBackend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "EQUIVALENCE_RTOL",
    "KERNELS",
    "FusedNumpyBackend",
    "NumpyBackend",
    "active_backend",
    "active_backend_name",
    "backend_names",
    "get_backend",
    "known_backend_names",
    "register_backend",
    "register_unavailable_backend",
    "reset_active_backend",
    "resolve_backend_name",
    "set_active_backend",
    "use_backend",
]
