"""The optional ``numba`` backend (jitted kernels).

``numba`` is not a dependency of this project.  When it is importable the
backend registers like any other; when it is not, the registry records it as
*known but unavailable* so requesting it produces an actionable error (with
the install hint below) instead of an ``ImportError`` traceback — and the
rest of the library never notices.

The jitted kernels replace the two seam operations where explicit loops beat
vectorised numpy once the JIT warm-up is paid: the pairwise Euclidean
distance matrix (upper-triangle loop, no ``(N, N, d)`` broadcast temporary)
and the Theorem-6 utility contraction.  Both use sequential summation, which
orders additions differently from numpy's pairwise reductions, so the
overridden kernels are declared ``tolerance``; everything else is inherited
from the bit-exact numpy reference.
"""

from __future__ import annotations

import numpy as np

from repro.backend.numpy_backend import NumpyBackend

#: Shown when the backend is requested but numba cannot be imported.
INSTALL_HINT = "install it with 'pip install numba' to enable this backend"

try:  # pragma: no cover - the CI backend job exercises the available branch
    import numba

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False


if NUMBA_AVAILABLE:  # pragma: no cover - requires the optional dependency

    @numba.njit(cache=False)
    def _pairwise_numba(points: np.ndarray) -> np.ndarray:
        count, dims = points.shape
        distances = np.zeros((count, count))
        for i in range(count):
            for j in range(i + 1, count):
                accumulator = 0.0
                for k in range(dims):
                    diff = points[i, k] - points[j, k]
                    accumulator += diff * diff
                distance = np.sqrt(accumulator)
                distances[i, j] = distance
                distances[j, i] = distance
        return distances

    @numba.njit(cache=False)
    def _utility_numba(
        stack: np.ndarray,
        inverses: np.ndarray,
        prior: np.ndarray,
        n_records: float,
    ) -> np.ndarray:
        batch_size, n, _ = stack.shape
        utilities = np.empty(batch_size)
        disguised = np.empty(n)
        for b in range(batch_size):
            for i in range(n):
                total = 0.0
                for j in range(n):
                    total += stack[b, i, j] * prior[j]
                disguised[i] = total
            mse_sum = 0.0
            for k in range(n):
                linear = 0.0
                quadratic = 0.0
                for i in range(n):
                    b_ki = inverses[b, k, i]
                    linear += b_ki * disguised[i]
                    quadratic += b_ki * b_ki * disguised[i]
                mse_sum += (quadratic - linear * linear) / n_records
            utilities[b] = mse_sum / n
        return utilities

    class NumbaBackend(NumpyBackend):
        """Jitted pairwise-distance and utility kernels (``numba``)."""

        name = "numba"
        exactness = {
            "evaluate_stack": "tolerance",
            "batched_safe_inverses": "bit-exact",
            "pairwise_distances": "tolerance",
            "crossover_columns": "bit-exact",
            "mutate_stack": "bit-exact",
            "repair_stack": "bit-exact",
            "disguise_codes": "bit-exact",
        }

        def pairwise_distances(self, points: np.ndarray) -> np.ndarray:
            if points.shape[0] == 0:
                return np.zeros((0, 0))
            return _pairwise_numba(np.ascontiguousarray(points))

        def _utility_batch(
            self,
            stack: np.ndarray,
            inverses: np.ndarray,
            prior: np.ndarray,
            n_records: int,
        ) -> np.ndarray:
            return _utility_numba(
                np.ascontiguousarray(stack),
                np.ascontiguousarray(inverses),
                np.ascontiguousarray(prior),
                float(n_records),
            )
