"""The array-backend protocol: the (B, n, n) hot kernels behind one seam.

The optimizer's inner loop is dominated by dense linear algebra over stacks
of randomization matrices.  Everything that touches a ``(B, n, n)`` stack in
the hot path flows through an :class:`ArrayBackend` instance so alternative
implementations (fused numpy, jitted numba, ...) can be swapped in without
touching the callers — and without any of them being able to drift
semantically, because every registered backend must pass the cross-backend
equivalence suite (``tests/backend/test_backend_equivalence.py``).

Two hard contracts every backend implementation must honour:

* **RNG-free kernels.**  No kernel may draw randomness.  Random values
  (crossover cuts, mutation indices/magnitudes/signs) are drawn by the
  callers in :mod:`repro.core.operators` — in the exact order the reference
  implementation draws them — and passed in as arrays.  Backend choice can
  therefore never perturb the seeded RNG stream: fronts and checkpoints
  stay comparable (and kill/resume stays bit-identical) across backends.
* **Declared exactness.**  :attr:`ArrayBackend.exactness` maps every kernel
  name to ``"bit-exact"`` (output must equal the ``numpy`` reference bit for
  bit) or ``"tolerance"`` (output must match within ``rtol=1e-9``; the
  documented rtol/atol of the equivalence suite).  The suite enforces the
  declaration, so a backend cannot silently loosen a kernel it claims exact.

Kernels receive validated inputs: **C-contiguous** ``(B, n, n)`` float64
stacks (see :func:`repro.utils.validation.check_matrix_stack`) and matching
priors.  Validation lives in the callers so every backend sees identical
inputs and error behaviour stays backend-independent.  The layout guarantee
is part of the contract because BLAS contractions round differently for
different operand layouts — bit-exactness is only well-defined once every
backend contracts the same bytes in the same layout.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

#: Kernel names a backend implements (the keys of ``exactness``).
KERNELS = (
    "evaluate_stack",
    "batched_safe_inverses",
    "pairwise_distances",
    "crossover_columns",
    "mutate_stack",
    "repair_stack",
    "disguise_codes",
)

#: Relative tolerance the equivalence suite applies to kernels a backend
#: declares ``"tolerance"`` (``"bit-exact"`` kernels are compared with
#: ``np.array_equal``).
EQUIVALENCE_RTOL = 1e-9


class ArrayBackend:
    """Abstract base of every array backend.

    Subclasses override the kernels below; the base class only fixes the
    protocol and the metadata every backend carries.
    """

    #: Registry name (``numpy``, ``numpy-fused``, ``numba``).
    name: str = ""

    #: Kernel name -> ``"bit-exact"`` | ``"tolerance"`` (see module docs).
    exactness: Mapping[str, str] = {}

    def evaluate_stack(
        self,
        stack: np.ndarray,
        prior: np.ndarray,
        n_records: int,
        *,
        condition_limit: float,
        cheap_posterior_bound: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Full-fidelity evaluation of a ``(B, n, n)`` stack.

        Returns ``(privacy, utility, worst_posterior, invertible)`` — the
        four ``(B,)`` columns of :class:`repro.metrics.evaluation.
        BatchEvaluation` before fidelity scaling and the delta-feasibility
        mask are applied by the caller.  ``cheap_posterior_bound`` selects
        the row-max/row-sum posterior bound (bit-identical to the posterior
        tensor maximum — division by a positive row sum is monotone) over
        materialising the ``(B, n, n)`` posterior tensor; the caller picks
        the branch, so both stay reachable on every backend.  Utility is
        ``inf`` for rows whose matrix is not numerically invertible.
        """
        raise NotImplementedError

    def batched_safe_inverses(
        self, stack: np.ndarray, *, condition_limit: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Invert every numerically invertible matrix in the stack.

        Returns ``(inverses, invertible)``; rows failing the shared 1-norm
        condition rule are masked out (callers must consult the mask before
        using a row).
        """
        raise NotImplementedError

    def pairwise_distances(self, points: np.ndarray) -> np.ndarray:
        """Euclidean distance matrix between the rows of ``(N, d) points``."""
        raise NotImplementedError

    def crossover_columns(
        self, first: np.ndarray, second: np.ndarray, cuts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Column crossover of paired parents at pre-drawn boundaries.

        ``cuts[p]`` in ``1..n-1`` is the boundary for pair ``p``: columns
        ``cuts[p]:`` are swapped between the parents.  Both children are
        returned as fresh stacks.
        """
        raise NotImplementedError

    def mutate_stack(
        self,
        stack: np.ndarray,
        column_indices: np.ndarray,
        element_indices: np.ndarray,
        magnitudes: np.ndarray,
        add: np.ndarray,
    ) -> np.ndarray:
        """Proportional column mutation with pre-drawn randomness.

        Applies the paper's Section V-F mutation — perturb one element of
        one column and rescale the rest proportionally, with the reference
        implementation's saturation-flip and undo rules — to every matrix of
        the stack.  All random draws arrive as arrays; the kernel itself is
        deterministic.
        """
        raise NotImplementedError

    def repair_stack(
        self,
        stack: np.ndarray,
        prior: np.ndarray,
        delta: float,
        *,
        max_passes: int,
        tolerance: float,
    ) -> np.ndarray:
        """Privacy-bound repair (Section V-G) of every matrix in the stack.

        Fully deterministic: each matrix follows the scalar reference
        trajectory (worst violating posterior cell relaxed per pass, best
        visited state returned).
        """
        raise NotImplementedError

    def disguise_codes(
        self,
        probabilities: np.ndarray,
        codes: np.ndarray,
        uniforms: np.ndarray,
    ) -> np.ndarray:
        """Randomized-response disguise of ``(N,)`` integer codes.

        ``probabilities`` is the ``(n, n)`` column-stochastic RR matrix
        (``probabilities[j, i]`` = P(report ``j`` | true ``i``)); ``codes``
        holds validated int64 true categories in ``[0, n)``; ``uniforms``
        holds the caller's pre-drawn ``rng.random(N)`` values, in draw order.
        Returns the ``(N,)`` int64 disguised codes.  The defining semantics
        (which every implementation must reproduce bit for bit or at its
        declared exactness) are inverse-CDF sampling against the column CDF:
        ``out[k] = sum(uniforms[k] > cumsum(probabilities[:, codes[k]]))``
        with the final CDF entry clamped to exactly ``1.0`` — equivalently
        ``np.searchsorted(cdf[:, codes[k]], uniforms[k], side="left")``.
        Kernels must not draw randomness and must keep peak auxiliary
        allocation ``O(N + n^2)`` (the historical ``(n, N)`` broadcast
        intermediate is exactly what this kernel exists to avoid).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
