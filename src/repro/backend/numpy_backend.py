"""The ``numpy`` reference backend.

This is the seam's ground truth: the exact batched-numpy implementations the
hot path ran before the backend seam existed, moved here verbatim.  Every
kernel is declared ``bit-exact`` — the default backend must reproduce the
pre-seam trajectories bit for bit, which the engine-equivalence and
checkpoint suites enforce end to end.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend
from repro.metrics.privacy import joint_tensor, posterior_from_joint, posterior_tensor
from repro.metrics.utility import utility_score_batch
from repro.utils.linalg import one_norm_condition_estimate

try:  # pragma: no cover - exercised implicitly where scipy is present
    from scipy.spatial.distance import pdist, squareform

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy is optional
    _HAVE_SCIPY = False

#: Tiny value used to keep columns strictly positive where renormalisation
#: would otherwise divide by zero.  Must stay equal to the scalar operators'
#: ``repro.core.operators._EPSILON`` (defined there; not imported to keep the
#: backend package import-light and cycle-free).
_EPSILON = 1e-12


class NumpyBackend(ArrayBackend):
    """Reference batched-numpy kernels (the default backend)."""

    name = "numpy"
    exactness = {
        "evaluate_stack": "bit-exact",
        "batched_safe_inverses": "bit-exact",
        "pairwise_distances": "bit-exact",
        "crossover_columns": "bit-exact",
        "mutate_stack": "bit-exact",
        "repair_stack": "bit-exact",
        "disguise_codes": "bit-exact",
    }

    def evaluate_stack(
        self,
        stack: np.ndarray,
        prior: np.ndarray,
        n_records: int,
        *,
        condition_limit: float,
        cheap_posterior_bound: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        # One joint tensor serves both the adversary accuracy (Eq. 8) and the
        # posterior maximum (Eq. 9).
        joint = joint_tensor(stack, prior)
        privacy = 1.0 - joint.max(axis=2).sum(axis=1)
        if not cheap_posterior_bound:
            worst_posterior = posterior_from_joint(joint).max(axis=(1, 2))
        else:
            # Cheap posterior bound: max_y (max_x joint[y, x]) / sum_x
            # joint[y, x].  Division by a positive row sum is monotone, so
            # this equals the posterior-tensor maximum bit for bit while only
            # touching (B, n) reductions; zero-probability reports contribute
            # 0, matching the posterior_from_joint convention.
            row_max = joint.max(axis=2)
            row_sum = joint.sum(axis=2)
            safe = np.where(row_sum > 0, row_sum, 1.0)
            worst_posterior = np.where(row_sum > 0, row_max / safe, 0.0).max(axis=1)
        inverses, invertible = self.batched_safe_inverses(
            stack, condition_limit=condition_limit
        )
        utility = np.full(stack.shape[0], np.inf)
        if invertible.any():
            utility[invertible] = self._utility_batch(
                stack[invertible], inverses[invertible], prior, n_records
            )
        return privacy, utility, worst_posterior, invertible

    def _utility_batch(
        self,
        stack: np.ndarray,
        inverses: np.ndarray,
        prior: np.ndarray,
        n_records: int,
    ) -> np.ndarray:
        """Per-matrix average Theorem-6 MSE; the hook subclasses override."""
        return utility_score_batch(stack, inverses, prior, n_records)

    def batched_safe_inverses(
        self, stack: np.ndarray, *, condition_limit: float
    ) -> tuple[np.ndarray, np.ndarray]:
        inverses = np.zeros_like(stack)
        if stack.shape[0] == 0:
            return inverses, np.zeros(0, dtype=bool)
        signs, log_determinants = np.linalg.slogdet(stack)
        candidates = (signs != 0) & np.isfinite(log_determinants)
        if candidates.any():
            try:
                inverses[candidates] = np.linalg.inv(stack[candidates])
            except np.linalg.LinAlgError:  # pragma: no cover - slogdet said fine
                for index in np.flatnonzero(candidates):
                    try:
                        inverses[index] = np.linalg.inv(stack[index])
                    except np.linalg.LinAlgError:
                        candidates[index] = False
                        inverses[index] = 0.0
        condition_estimates = one_norm_condition_estimate(stack, inverses)
        invertible = (
            candidates
            & np.isfinite(condition_estimates)
            & (condition_estimates < condition_limit)
        )
        return inverses, invertible

    def pairwise_distances(self, points: np.ndarray) -> np.ndarray:
        if points.shape[0] == 0:
            return np.zeros((0, 0))
        if _HAVE_SCIPY and points.shape[0] > 1 and points.shape[1] > 0:
            return squareform(pdist(points, metric="euclidean"))
        deltas = points[:, None, :] - points[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", deltas, deltas))

    def crossover_columns(
        self, first: np.ndarray, second: np.ndarray, cuts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        n = first.shape[-1]
        swap = (np.arange(n)[None, :] >= cuts[:, None])[:, None, :]  # (P, 1, n)
        child_a = np.where(swap, second, first)
        child_b = np.where(swap, first, second)
        return child_a, child_b

    def mutate_stack(
        self,
        stack: np.ndarray,
        column_indices: np.ndarray,
        element_indices: np.ndarray,
        magnitudes: np.ndarray,
        add: np.ndarray,
    ) -> np.ndarray:
        batch_size = stack.shape[0]
        rows = np.arange(batch_size)
        columns = stack[rows, :, column_indices]  # (B, n) copies via fancy indexing
        element_values = columns[rows, element_indices]
        delta = np.where(
            add,
            np.minimum(magnitudes, 1.0 - element_values),
            -np.minimum(magnitudes, element_values),
        )
        # The element is already saturated in the chosen direction; flip it
        # (same rule as the scalar operator).
        saturated = np.abs(delta) <= _EPSILON
        flip_add = np.minimum(magnitudes, 1.0 - element_values)
        flip_sub = -np.minimum(magnitudes, element_values)
        flipped = np.where(flip_add != 0.0, flip_add, flip_sub)
        delta = np.where(saturated, np.where(delta != 0.0, -delta, flipped), delta)
        unchanged = np.abs(delta) <= _EPSILON
        mutated_columns = self._rebalance_columns(columns, element_indices, delta)
        mutated_columns[unchanged] = columns[unchanged]
        result = stack.copy()
        result[rows, :, column_indices] = mutated_columns
        return result

    @staticmethod
    def _rebalance_columns(
        columns: np.ndarray, changed: np.ndarray, delta: np.ndarray
    ) -> np.ndarray:
        """Batched column rebalancing: apply ``delta[b]`` to
        ``columns[b, changed[b]]`` and redistribute ``-delta[b]`` over the
        other entries of each column, with the reference undo/clip/
        renormalise rules."""
        batch_size, n = columns.shape
        rows = np.arange(batch_size)
        cols = columns.copy()
        cols[rows, changed] = cols[rows, changed] + delta
        others = np.ones((batch_size, n), dtype=bool)
        others[rows, changed] = False
        positive = delta > 0
        weights = np.where(others, cols, 0.0)
        total_weight = weights.sum(axis=1)
        headroom = np.where(others, 1.0 - cols, 0.0)
        total_headroom = headroom.sum(axis=1)
        # Undo rows: nothing to take from / add to, so the change is reverted
        # (including the same add-then-subtract rounding as the scalar code).
        undo = (positive & (total_weight <= _EPSILON)) | (
            ~positive & (total_headroom <= _EPSILON)
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            subtract = (
                delta[:, None]
                * weights
                / np.where(total_weight > 0, total_weight, 1.0)[:, None]
            )
            add = (
                (-delta)[:, None]
                * headroom
                / np.where(total_headroom > 0, total_headroom, 1.0)[:, None]
            )
        adjusted = cols + np.where(positive[:, None], -subtract, add)
        adjusted = np.clip(adjusted, 0.0, 1.0)
        sums = adjusted.sum(axis=1)
        degenerate = sums <= 0
        result = np.where(
            degenerate[:, None],
            1.0 / n,
            adjusted / np.where(degenerate, 1.0, sums)[:, None],
        )
        if undo.any():
            reverted = cols.copy()
            reverted[rows, changed] = reverted[rows, changed] - delta
            result[undo] = reverted[undo]
        return result

    def disguise_codes(
        self,
        probabilities: np.ndarray,
        codes: np.ndarray,
        uniforms: np.ndarray,
    ) -> np.ndarray:
        # Sort-and-group searchsorted: stable-argsort the codes (radix sort
        # for int64 — O(N)), gather the uniforms into category order once,
        # then binary-search each category's contiguous slice against its
        # column CDF.  ``side="left"`` counts the CDF entries strictly below
        # each uniform, which equals the defining broadcast semantics
        # ``sum(u > cdf)`` bit for bit, while the peak auxiliary footprint is
        # O(N + n^2) instead of the historical (n, N) broadcast.
        n = probabilities.shape[0]
        cdf = np.cumsum(probabilities, axis=0)
        cdf[-1, :] = 1.0
        order = np.argsort(codes, kind="stable")
        sorted_uniforms = uniforms[order]
        boundaries = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(codes, minlength=n), out=boundaries[1:])
        sorted_out = np.empty(codes.size, dtype=np.int64)
        for category in range(n):
            begin, end = boundaries[category], boundaries[category + 1]
            if begin < end:
                sorted_out[begin:end] = np.searchsorted(
                    cdf[:, category], sorted_uniforms[begin:end], side="left"
                )
        disguised = np.empty(codes.size, dtype=np.int64)
        disguised[order] = sorted_out
        return disguised

    def repair_stack(
        self,
        stack: np.ndarray,
        prior: np.ndarray,
        delta: float,
        *,
        max_passes: int,
        tolerance: float,
    ) -> np.ndarray:
        values = stack.copy()
        batch_size, n, _ = values.shape
        if batch_size == 0:
            return values
        best = values.copy()
        best_worst = np.full(batch_size, np.inf)
        active = np.ones(batch_size, dtype=bool)
        for pass_index in range(max_passes + 1):
            index = np.flatnonzero(active)
            if index.size == 0:
                break
            posterior = posterior_tensor(values[index], prior)
            worst = posterior.reshape(index.size, -1).max(axis=1)
            improved = worst < best_worst[index]
            if improved.any():
                improved_index = index[improved]
                best[improved_index] = values[improved_index]
                best_worst[improved_index] = worst[improved]
            met = worst <= delta + tolerance
            active[index[met]] = False
            if pass_index == max_passes:
                break
            index = index[~met]
            if index.size == 0:
                continue
            posterior = posterior[~met]
            flat = posterior.reshape(index.size, -1).argmax(axis=1)
            i = flat // n
            j = flat % n
            local = np.arange(index.size)
            row_values = values[index, i, :]  # (A, n)
            cell = values[index, i, j]
            prior_j = prior[j]
            row_rest = row_values @ prior - cell * prior_j
            ok = prior_j > _EPSILON
            if delta < 1.0:
                with np.errstate(divide="ignore", invalid="ignore"):
                    target = delta * row_rest / (prior_j * (1.0 - delta))
            else:
                target = cell.copy()
            target = np.clip(target, 0.0, cell)
            removed = cell - target
            ok &= removed > _EPSILON
            columns = values[index, :, j]  # (A, n)
            columns[local, i] = target
            others = np.ones((index.size, n), dtype=bool)
            others[local, i] = False
            headroom = np.where(others, 1.0 - columns, 0.0)
            total_headroom = headroom.sum(axis=1)
            ok &= total_headroom > _EPSILON
            with np.errstate(divide="ignore", invalid="ignore"):
                spread = (
                    removed[:, None]
                    * headroom
                    / np.where(total_headroom > 0, total_headroom, 1.0)[:, None]
                )
            new_columns = np.clip(columns + spread, 0.0, 1.0)
            column_sums = new_columns.sum(axis=1)
            ok &= column_sums > 0
            # Matrices that hit a scalar break condition freeze at their
            # current (already scored) state.
            active[index[~ok]] = False
            if ok.any():
                apply = np.flatnonzero(ok)
                values[index[apply], :, j[apply]] = (
                    new_columns[apply] / column_sums[apply, None]
                )
        return best
