"""Backend registry: names, selection precedence, and the active backend.

Selection precedence (first hit wins):

1. an explicit name (``--backend`` on the CLI, ``use_backend(...)`` /
   ``set_active_backend(...)`` in code);
2. the ``REPRO_BACKEND`` environment variable;
3. the ``numpy`` default.

``set_active_backend`` also exports the choice through ``REPRO_BACKEND`` so
worker processes spawned afterwards (campaign/pipeline grids) inherit it.

Two failure modes are kept distinct: an *unknown* name raises
:class:`~repro.exceptions.BackendError` listing the registered backends,
while a *known but unavailable* one (``numba`` without the numba package)
raises :class:`~repro.exceptions.BackendUnavailableError` carrying the
install hint.  The CLI maps both to exit code 2.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.backend.base import ArrayBackend
from repro.exceptions import BackendError, BackendUnavailableError

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_BACKEND"

#: Backend used when neither an explicit name nor the env var is set.
DEFAULT_BACKEND = "numpy"

_BACKENDS: dict[str, ArrayBackend] = {}
_UNAVAILABLE: dict[str, str] = {}
_ACTIVE: str | None = None


def register_backend(backend: ArrayBackend) -> ArrayBackend:
    """Register (or re-register) a backend instance under ``backend.name``."""
    if not backend.name:
        raise BackendError("a backend must carry a non-empty name")
    _BACKENDS[backend.name] = backend
    _UNAVAILABLE.pop(backend.name, None)
    return backend


def register_unavailable_backend(name: str, hint: str) -> None:
    """Record ``name`` as known but not usable in this environment.

    Requesting it raises :class:`BackendUnavailableError` whose message ends
    with ``hint`` (e.g. how to install the missing optional dependency).
    """
    if name not in _BACKENDS:
        _UNAVAILABLE[name] = hint


def backend_names() -> list[str]:
    """Sorted names of the backends that can actually be activated."""
    return sorted(_BACKENDS)


def known_backend_names() -> list[str]:
    """Sorted names of every known backend, available or not."""
    return sorted({*_BACKENDS, *_UNAVAILABLE})


def get_backend(name: str) -> ArrayBackend:
    """Look up a backend by name.

    Raises :class:`BackendUnavailableError` for a known-but-unavailable
    backend and :class:`BackendError` (listing the registered names) for an
    unknown one.
    """
    backend = _BACKENDS.get(name)
    if backend is not None:
        return backend
    hint = _UNAVAILABLE.get(name)
    if hint is not None:
        raise BackendUnavailableError(
            f"backend {name!r} is not available in this environment; {hint}"
        )
    raise BackendError(
        f"unknown backend {name!r}; registered backends: "
        f"{', '.join(backend_names())}"
    )


def resolve_backend_name(name: str | None = None) -> str:
    """Apply the selection precedence: explicit > ``REPRO_BACKEND`` > default.

    Only resolves the *name*; pass the result to :func:`get_backend` (or
    :func:`set_active_backend`) to validate it.
    """
    if name:
        return name
    environment = os.environ.get(ENV_VAR)
    if environment:
        return environment
    return DEFAULT_BACKEND


def active_backend_name() -> str:
    """Name of the backend the seam kernels currently dispatch to."""
    return _ACTIVE if _ACTIVE is not None else resolve_backend_name()


def active_backend() -> ArrayBackend:
    """The backend instance the seam kernels currently dispatch to."""
    return get_backend(active_backend_name())


def set_active_backend(name: str) -> ArrayBackend:
    """Activate ``name`` process-wide (validating it first).

    Also exports the choice through ``REPRO_BACKEND`` so worker processes
    spawned afterwards inherit the same backend.
    """
    global _ACTIVE
    backend = get_backend(name)
    _ACTIVE = name
    os.environ[ENV_VAR] = name
    return backend


@contextmanager
def use_backend(name: str) -> Iterator[ArrayBackend]:
    """Context manager: activate ``name``, restore the previous state on exit
    (both the process-wide choice and the ``REPRO_BACKEND`` variable)."""
    global _ACTIVE
    saved_active = _ACTIVE
    saved_environment = os.environ.get(ENV_VAR)
    backend = set_active_backend(name)
    try:
        yield backend
    finally:
        _ACTIVE = saved_active
        if saved_environment is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = saved_environment


def reset_active_backend() -> None:
    """Drop any process-wide activation (tests); the env var is untouched."""
    global _ACTIVE
    _ACTIVE = None
