"""The ``numpy-fused`` backend: einsum-fused contractions + reused workspaces.

Same math as the :class:`~repro.backend.numpy_backend.NumpyBackend`, with the
batch-evaluation hot path restructured around three measured wins:

* **No slogdet screen.**  The reference inverts only the stack rows whose
  ``slogdet`` is clean.  For column-stochastic matrices (entries in
  ``[0, 1]``) the log-determinant can never overflow, so the screen reduces
  to "the LU factorisation has no zero pivot" — exactly the condition under
  which ``np.linalg.inv`` itself raises.  The fused path therefore inverts
  the whole stack in one LAPACK call and only falls back to the reference
  screen-then-invert path when that raises (i.e. when at least one row is
  exactly singular).  Batched ``getrf/getri`` factorises each matrix
  independently, so the inverses it produces are bit-identical to the
  reference's subset inversion — the kernel stays ``bit-exact``.
* **Row-bound posterior always.**  The worst posterior is computed from the
  ``(B, n)`` row max / row sum reductions instead of materialising the
  ``(B, n, n)`` posterior tensor.  Division by a positive row sum is
  monotone, so the bound equals the tensor maximum bit for bit.
* **Preallocated workspaces, no subset copies.**  Every ``(B, n, n)`` /
  ``(B, n, 1)`` intermediate of the Theorem-6 utility lives in a per-shape
  workspace reused across generations, and the closed form runs over the
  *full* stack instead of fancy-indexed ``stack[invertible]`` copies (rows
  of non-invertible matrices compute garbage that is masked out, under a
  suppressing ``errstate``).  The arithmetic is the exact reference op
  sequence — batched ``matmul`` factorises/contracts each matrix of a stack
  independently, so full-stack results equal subset results bit for bit —
  which keeps ``evaluate_stack`` ``bit-exact``.  (An earlier einsum-fused
  contraction was faster still but moved utility in its last ulps; last-ulp
  differences flip dominance ties in the Ω optimal set and fork fixed-seed
  OptRR trajectories, so bit-exactness is the contract worth keeping.)
"""

from __future__ import annotations

import numpy as np

from repro.backend.numpy_backend import NumpyBackend
from repro.utils.linalg import one_norm_condition_estimate


class FusedNumpyBackend(NumpyBackend):
    """Fused-contraction numpy backend (``numpy-fused``)."""

    name = "numpy-fused"
    exactness = {
        "evaluate_stack": "bit-exact",
        "batched_safe_inverses": "bit-exact",
        "pairwise_distances": "bit-exact",
        "crossover_columns": "bit-exact",
        "mutate_stack": "bit-exact",
        "repair_stack": "bit-exact",
        "disguise_codes": "bit-exact",
    }

    def __init__(self) -> None:
        # (B, n) -> dict of reusable scratch arrays; a run touches only a
        # handful of shapes (population, offspring, archive), so the cache
        # stays tiny while sparing one (B, n, n) + five (B, n) allocations
        # per generation.
        self._workspaces: dict[tuple[int, int], dict[str, np.ndarray]] = {}

    def _workspace(self, batch_size: int, n: int) -> dict[str, np.ndarray]:
        key = (batch_size, n)
        workspace = self._workspaces.get(key)
        if workspace is None:
            workspace = {
                "joint": np.empty((batch_size, n, n)),
                "squared": np.empty((batch_size, n, n)),
                "row_max": np.empty((batch_size, n)),
                "row_sum": np.empty((batch_size, n)),
            }
            self._workspaces[key] = workspace
        return workspace

    def evaluate_stack(
        self,
        stack: np.ndarray,
        prior: np.ndarray,
        n_records: int,
        *,
        condition_limit: float,
        cheap_posterior_bound: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        batch_size, n, _ = stack.shape
        if batch_size == 0:
            return super().evaluate_stack(
                stack,
                prior,
                n_records,
                condition_limit=condition_limit,
                cheap_posterior_bound=cheap_posterior_bound,
            )
        prior = np.asarray(prior, dtype=np.float64)
        workspace = self._workspace(batch_size, n)
        joint = np.multiply(stack, prior[None, None, :], out=workspace["joint"])
        row_max = joint.max(axis=2, out=workspace["row_max"])
        row_sum = joint.sum(axis=2, out=workspace["row_sum"])
        privacy = 1.0 - row_max.sum(axis=1)
        # Row-bound posterior: bit-identical to the (B, n, n) posterior
        # tensor maximum (monotone division by a positive row sum), for both
        # caller branches, so `cheap_posterior_bound` changes nothing here.
        safe = np.where(row_sum > 0, row_sum, 1.0)
        worst_posterior = np.where(row_sum > 0, row_max / safe, 0.0).max(axis=1)
        inverses, invertible = self.batched_safe_inverses(
            stack, condition_limit=condition_limit
        )
        utility = np.full(batch_size, np.inf)
        if invertible.any():
            # Theorem-6 closed form over the full stack (no fancy-index
            # subset copies), in the exact reference op sequence — batched
            # matmul handles each matrix independently, so every invertible
            # row matches the reference's subset computation bit for bit.
            # Rows of non-invertible matrices may overflow harmlessly; they
            # are masked out below.
            # BLAS rounding depends on operand memory layout, and the
            # reference always contracts C-contiguous fancy-index copies —
            # so normalise the operands to the same layout before matmul
            # (a no-op for the engine's already-contiguous stacks).
            stack_c = np.ascontiguousarray(stack)
            inverses_c = np.ascontiguousarray(inverses)
            with np.errstate(over="ignore", invalid="ignore"):
                squared = np.multiply(
                    inverses_c, inverses_c, out=workspace["squared"]
                )
                disguised = np.matmul(stack_c, prior[None, :, None])
                linear = np.matmul(inverses_c, disguised)[..., 0]
                quadratic = np.matmul(squared, disguised)[..., 0]
                mse = (quadratic - linear**2) / float(n_records)
                utility[invertible] = mse[invertible].mean(axis=1)
        return privacy, utility, worst_posterior, invertible

    def batched_safe_inverses(
        self, stack: np.ndarray, *, condition_limit: float
    ) -> tuple[np.ndarray, np.ndarray]:
        if stack.shape[0] == 0:
            return np.zeros_like(stack), np.zeros(0, dtype=bool)
        try:
            inverses = np.linalg.inv(stack)
        except np.linalg.LinAlgError:
            # At least one row is exactly singular: take the reference
            # screen-then-invert path, which handles mixed stacks.
            return super().batched_safe_inverses(
                stack, condition_limit=condition_limit
            )
        condition_estimates = one_norm_condition_estimate(stack, inverses)
        invertible = np.isfinite(condition_estimates) & (
            condition_estimates < condition_limit
        )
        return inverses, invertible

    def disguise_codes(
        self,
        probabilities: np.ndarray,
        codes: np.ndarray,
        uniforms: np.ndarray,
    ) -> np.ndarray:
        # Vectorised binary search over all N records at once: ceil(log2 n)
        # rounds of one (N,) gather + compare each, no argsort pass.  Pure
        # ``cdf < u`` comparisons reproduce ``searchsorted(..., "left")`` —
        # and therefore the reference kernel — bit for bit.
        n = probabilities.shape[0]
        cdf = np.cumsum(probabilities, axis=0)
        cdf[-1, :] = 1.0
        low = np.zeros(codes.size, dtype=np.int64)
        high = np.full(codes.size, n, dtype=np.int64)
        while True:
            active = low < high
            if not active.any():
                break
            # Clamp keeps converged lanes (low == high == n) in bounds; for
            # active lanes mid < high <= n already, so it changes nothing.
            mid = np.minimum((low + high) >> 1, n - 1)
            go_right = cdf[mid, codes] < uniforms
            low = np.where(active & go_right, mid + 1, low)
            high = np.where(active & ~go_right, mid, high)
        return low
